//! Cluster-machine equivalence: host-parallel epoch execution must be a
//! pure host-speed optimization, exactly like the cycle skipper.
//!
//! Three identities are asserted bit for bit, skip counters included:
//!
//! 1. **threaded == serial**: one host thread per cluster with
//!    double-barrier epoch synchronization produces exactly the stats of
//!    the serial round-robin epoch loop (`ClusterConfig::serial`);
//! 2. **serial == lockstep**: the epoch-chunked `run_until` driver over
//!    a skipping machine matches the naive per-cycle loop
//!    (`MachineConfig::with_lockstep`), so chunking at epoch boundaries
//!    never perturbs the event-horizon scheduler;
//! 3. **1 cluster == flat machine**: a 1×n cluster topology with one
//!    DRAM channel reproduces the flat `RunSpec::new(k).cores(n)` run exactly — the
//!    cluster layer adds nothing when there is nothing to slice.
//!
//! Plus the accounting contracts: cross-cluster replication fallbacks
//! are counted (never silently free), and the multi-channel DRAM
//! backside conserves line traffic while partitioning it.

use hsim::cluster::{cross_cluster_fallbacks, ClusterConfig, ClusterTopology};
use hsim::compiler::compile;
use hsim::prelude::*;
use hsim_workloads::nas;

/// Every observable of two per-core reports must match bit for bit —
/// including the skip accounting, which epoch chunking must preserve.
fn assert_cores_equal(a: &RunReport, b: &RunReport, what: &str) {
    assert_eq!(a.core, b.core, "{what}: core stats (incl. skip counters)");
    assert_eq!(a.cycles, b.cycles, "{what}: cycles");
    assert_eq!(a.skipped_cycles, b.skipped_cycles, "{what}: skipped");
    assert_eq!(a.committed, b.committed, "{what}: committed");
    assert_eq!(a.phase_cycles, b.phase_cycles, "{what}: phases");
    assert_eq!(a.amat.to_bits(), b.amat.to_bits(), "{what}: AMAT");
    assert_eq!(a.l1_accesses, b.l1_accesses, "{what}: L1");
    assert_eq!(a.l2_accesses, b.l2_accesses, "{what}: L2");
    assert_eq!(a.l3_accesses, b.l3_accesses, "{what}: L3");
    assert_eq!(a.lm_accesses, b.lm_accesses, "{what}: LM");
    assert_eq!(a.bus_requests, b.bus_requests, "{what}: bus requests");
    assert_eq!(a.bus_wait_cycles, b.bus_wait_cycles, "{what}: bus waits");
    assert_eq!(
        a.l3_bank_conflicts, b.l3_bank_conflicts,
        "{what}: conflicts"
    );
    assert_eq!(a.dram_reads, b.dram_reads, "{what}: DRAM reads");
    assert_eq!(a.dram_writes, b.dram_writes, "{what}: DRAM writes");
    assert_eq!(a.dram_row_hits, b.dram_row_hits, "{what}: row hits");
    assert_eq!(a.dram_row_misses, b.dram_row_misses, "{what}: row misses");
    assert_eq!(
        a.dram_row_conflicts, b.dram_row_conflicts,
        "{what}: row conflicts"
    );
    assert_eq!(
        a.dram_queue_stalls, b.dram_queue_stalls,
        "{what}: queue stalls"
    );
    assert_eq!(a.coh_shared_hits, b.coh_shared_hits, "{what}: shared hits");
    assert_eq!(a.coh_invalidations, b.coh_invalidations, "{what}: invals");
    assert_eq!(a.coh_interventions, b.coh_interventions, "{what}: intervs");
    assert_eq!(a.ecc_retries, b.ecc_retries, "{what}: ECC retries");
    assert_eq!(a.dma_retries, b.dma_retries, "{what}: DMA retries");
    assert_eq!(a.dir_nacks, b.dir_nacks, "{what}: dir NACKs");
    assert_eq!(a.escalations, b.escalations, "{what}: escalations");
}

/// Two cluster reports must agree on everything: shape, epochs, per-core
/// stats, fallback accounting.
fn assert_cluster_reports_equal(
    a: &hsim::ClusterRunReport,
    b: &hsim::ClusterRunReport,
    what: &str,
) {
    assert_eq!(a.makespan, b.makespan, "{what}: makespan");
    assert_eq!(a.epochs, b.epochs, "{what}: epochs");
    assert_eq!(a.epoch_cycles, b.epoch_cycles, "{what}: epoch length");
    assert_eq!(
        a.cross_cluster_fallbacks, b.cross_cluster_fallbacks,
        "{what}: cluster fallbacks"
    );
    assert_eq!(a.per_cluster.len(), b.per_cluster.len(), "{what}: clusters");
    for (c, (ca, cb)) in a.per_cluster.iter().zip(&b.per_cluster).enumerate() {
        assert_eq!(ca.makespan, cb.makespan, "{what}: cluster {c} makespan");
        assert_eq!(
            ca.replication_fallbacks, cb.replication_fallbacks,
            "{what}: cluster {c} repl fallbacks"
        );
        assert_eq!(ca.per_core.len(), cb.per_core.len(), "{what}: cores");
        for (i, (ra, rb)) in ca.per_core.iter().zip(&cb.per_core).enumerate() {
            assert_cores_equal(ra, rb, &format!("{what}: cluster {c} core {i}"));
        }
    }
}

fn run(
    kernel: &hsim::compiler::Kernel,
    topo: ClusterTopology,
    serial: bool,
    channels: usize,
    lockstep: bool,
) -> Option<hsim::ClusterRunReport> {
    let mut cluster = ClusterConfig::new(topo);
    if serial {
        cluster = cluster.serial();
    }
    let mut cfg = MachineConfig::for_mode(SysMode::HybridCoherent);
    cfg.mem.dram_channels = channels;
    if lockstep {
        cfg = cfg.with_lockstep();
    }
    match RunSpec::new(kernel)
        .clustered(&cluster)
        .config(cfg)
        .run()
        .map(RunOutcome::into_clusters)
    {
        Ok(r) => Some(r),
        Err(hsim::experiments::MultiRunError::Shard(_)) => None,
        Err(e) => panic!("simulation failed: {e}"),
    }
}

/// Identity 1: threaded epoch execution == serial epoch execution, for
/// every NAS kernel across topologies and channel counts.
#[test]
fn threaded_clusters_match_serial_oracle() {
    for kernel in nas::all_nas(Scale::Test) {
        for (clusters, per) in [(1, 2), (2, 1), (2, 2), (4, 1)] {
            for channels in [1usize, 2] {
                let topo = ClusterTopology::new(clusters, per);
                let Some(serial) = run(&kernel, topo, true, channels, false) else {
                    continue;
                };
                let threaded = run(&kernel, topo, false, channels, false)
                    .expect("shardability cannot depend on threading");
                assert_cluster_reports_equal(
                    &serial,
                    &threaded,
                    &format!("{} {clusters}x{per} ch{channels}", kernel.name),
                );
            }
        }
    }
}

/// Identity 2: the epoch-chunked skipping machine == the per-cycle
/// lockstep machine, inside the cluster driver. Chunked `run_until`
/// must not perturb the event-horizon scheduler's decisions (the skip
/// counters are compared in identity 1; here the *timing* is pinned to
/// the naive loop).
#[test]
fn epoch_chunked_skipping_matches_lockstep() {
    for kernel in nas::all_nas(Scale::Test) {
        let topo = ClusterTopology::new(2, 2);
        let Some(skip) = run(&kernel, topo, true, 1, false) else {
            continue;
        };
        let lock =
            run(&kernel, topo, true, 1, true).expect("shardability cannot depend on lockstep");
        assert_eq!(
            skip.makespan, lock.makespan,
            "{}: chunked skipping changed the makespan",
            kernel.name
        );
        assert_eq!(skip.total_committed(), lock.total_committed());
        assert_eq!(skip.total_dram_reads(), lock.total_dram_reads());
        assert_eq!(lock.total_skipped_cycles(), 0, "lockstep must not skip");
        for (a, b) in skip
            .per_cluster
            .iter()
            .flat_map(|c| &c.per_core)
            .zip(lock.per_cluster.iter().flat_map(|c| &c.per_core))
        {
            let mut core = a.core.clone();
            core.skipped_cycles = 0;
            assert_eq!(core, b.core, "{}: core stats diverged", kernel.name);
        }
    }
}

/// Identity 3: a 1×n topology on one DRAM channel is the flat n-core
/// machine, stat for stat — the cluster layer is invisible when there
/// is a single cluster.
#[test]
fn one_cluster_matches_flat_multimachine() {
    for kernel in nas::all_nas(Scale::Test) {
        for n in [1usize, 2, 4] {
            let topo = ClusterTopology::new(1, n);
            let Some(clustered) = run(&kernel, topo, false, 1, false) else {
                continue;
            };
            let flat = RunSpec::new(&kernel)
                .cores(n)
                .config(MachineConfig::for_mode(SysMode::HybridCoherent))
                .run()
                .map(RunOutcome::into_multi)
                .expect("shards as 1xn");
            assert_eq!(clustered.per_cluster.len(), 1);
            assert_eq!(
                clustered.makespan, flat.makespan,
                "{} 1x{n}: makespan",
                kernel.name
            );
            assert_eq!(
                clustered.per_cluster[0].replication_fallbacks,
                flat.replication_fallbacks
            );
            for (i, (a, b)) in clustered.per_cluster[0]
                .per_core
                .iter()
                .zip(&flat.per_core)
                .enumerate()
            {
                assert_cores_equal(a, b, &format!("{} 1x{n} core {i}", kernel.name));
            }
        }
    }
}

/// Cross-cluster sharing is never silently free: a kernel with shared
/// arrays split across k clusters reports `shared × (k − 1)` replication
/// fallbacks, and a 1-cluster split reports none.
#[test]
fn cross_cluster_fallbacks_are_counted() {
    let kernel = nas::all_nas(Scale::Test)
        .into_iter()
        .find(|k| k.name == "CG")
        .expect("CG exists");
    // `shared` is marked on shards, not the source kernel: count it the
    // way the sharder sees a 2-way split.
    let shared = kernel.shard(2).expect("CG shards")[0]
        .arrays
        .iter()
        .filter(|a| a.shared)
        .count() as u64;
    assert!(shared > 0, "CG's gathered table is shared-marked");
    assert_eq!(cross_cluster_fallbacks(&kernel, 1), 0);
    assert_eq!(cross_cluster_fallbacks(&kernel, 2), shared);
    assert_eq!(cross_cluster_fallbacks(&kernel, 4), 3 * shared);
    let report =
        run(&kernel, ClusterTopology::new(2, 2), false, 1, false).expect("CG shards to 2x2");
    assert_eq!(report.cross_cluster_fallbacks, shared);
    let one = run(&kernel, ClusterTopology::new(1, 4), false, 1, false).expect("CG shards to 1x4");
    assert_eq!(one.cross_cluster_fallbacks, 0);
}

/// Multi-channel DRAM conserves line traffic: striping lines across 2 or
/// 4 channels moves accesses between controllers but reads/writes the
/// same lines, and committed work is architecture-invariant.
#[test]
fn dram_channels_conserve_line_traffic() {
    for kernel in nas::all_nas(Scale::Test) {
        let topo = ClusterTopology::new(1, 2);
        let Some(one) = run(&kernel, topo, false, 1, false) else {
            continue;
        };
        for channels in [2usize, 4] {
            let multi = run(&kernel, topo, false, channels, false)
                .expect("shardability cannot depend on channels");
            assert_eq!(
                one.total_committed(),
                multi.total_committed(),
                "{} ch{channels}: committed work",
                kernel.name
            );
            assert_eq!(
                one.total_dram_reads(),
                multi.total_dram_reads(),
                "{} ch{channels}: DRAM line reads",
                kernel.name
            );
        }
    }
}

/// The two-level sharder nests exactly: `shard_clustered(c, p)` is
/// `shard(c)` then `shard(p)` per superslice, covering the iteration
/// space with valid kernels.
#[test]
fn clustered_sharding_nests_and_covers() {
    for kernel in nas::all_nas(Scale::Test) {
        let Ok(sliced) = kernel.shard_clustered(2, 2) else {
            continue;
        };
        assert_eq!(sliced.len(), 2);
        let total: u64 = sliced
            .iter()
            .flat_map(|c| c.iter())
            .map(|s| s.loops[0].n)
            .sum();
        assert_eq!(total, kernel.loops[0].n, "{}: coverage", kernel.name);
        for shard in sliced.iter().flat_map(|c| c.iter()) {
            assert!(shard.validate().is_ok());
            assert!(!compile(shard, SysMode::HybridCoherent.codegen())
                .program
                .is_empty());
        }
    }
}
