//! DMA controller (DMAC) timing model.
//!
//! The DMAC offers the three operations of §2.1: `dma-get` (SM → LM),
//! `dma-put` (LM → SM) and `dma-synch` (wait for tagged transfers).
//! Software triggers them with memory instructions; the machine routes the
//! ISA's DMA pseudo-instructions here. Transfers are **coherent with the
//! system memory**: every bus request of a `dma-get` snoops the cache
//! hierarchy for the line, and every `dma-put` bus request invalidates
//! matching cache lines — the hierarchy performs those lookups; this type
//! models command timing and tag bookkeeping.
//!
//! Timing model: a single engine processes transfers in issue order and
//! is *pipelined*: each command pays a programming/setup latency and a
//! first-data latency (DRAM access), but the engine accepts the next
//! command as soon as the previous one finishes streaming, so the
//! first-data latencies of back-to-back transfers overlap — the behavior
//! of a command-queue DMA engine like the Cell's MFC.
//!
//! ## Invariants
//!
//! * **Horizon monotonicity** — [`Dmac::next_event_after`] reports the
//!   earliest engine-free or tag-landing event strictly after `now`.
//!   All engine state changes happen synchronously inside
//!   `issue`/`synch` calls, so between calls the horizon only moves
//!   forward; the event-horizon cycle skipper sleeps until it (a
//!   `dma-synch` wake-up is exactly such an event).
//! * **Channel accounting stays with the backside** — the DMAC times
//!   its own streaming; the DRAM *line counts* its transfers move are
//!   attributed per core by the shared backside (`note_dram_read` /
//!   `note_dram_write`), so DMA traffic partitions the channel totals
//!   like demand traffic does. DMA lines are deliberately not
//!   row-classified: block transfers stream whole rows, and their
//!   bandwidth cost is already modeled here.

use crate::fault::{backoff_delay, FaultConfig, FaultEscalation, FaultRoller, FaultSite};

/// DMA transfer direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DmaOp {
    /// SM → LM (`dma-get`).
    Get,
    /// LM → SM (`dma-put`).
    Put,
}

/// Number of synchronization tags supported (the ISA encodes tags 0–7).
pub const NUM_TAGS: usize = 8;

/// DMAC configuration.
#[derive(Clone, Debug)]
pub struct DmaConfig {
    /// Cycles to program one command via the MMIO registers.
    pub setup_latency: u64,
    /// First-data latency (memory access before streaming starts).
    pub first_data_latency: u64,
    /// Streaming bandwidth in bytes per cycle.
    pub bytes_per_cycle: u64,
}

impl Default for DmaConfig {
    fn default() -> Self {
        DmaConfig {
            setup_latency: 10,
            first_data_latency: 100,
            bytes_per_cycle: 32,
        }
    }
}

/// DMA activity counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct DmaStats {
    /// `dma-get` commands issued.
    pub gets: u64,
    /// `dma-put` commands issued.
    pub puts: u64,
    /// `dma-synch` commands executed.
    pub synchs: u64,
    /// Bytes moved SM → LM.
    pub bytes_get: u64,
    /// Bytes moved LM → SM.
    pub bytes_put: u64,
    /// Cycles the engine spent transferring.
    pub busy_cycles: u64,
    /// Transfer timeouts injected by the fault plan and recovered by
    /// re-streaming after an exponential backoff.
    pub retries: u64,
    /// Transfers whose timeouts exhausted the retry budget: counted as
    /// structured [`FaultEscalation`]s (the transfer still completes —
    /// escalation is a diagnosis, not a wedge).
    pub escalations: u64,
}

/// The DMA controller.
pub struct Dmac {
    /// Configuration.
    pub cfg: DmaConfig,
    /// Completion cycle of the last transfer issued per tag.
    tag_done_at: [u64; NUM_TAGS],
    /// When the single transfer engine becomes free.
    engine_free_at: u64,
    /// Deterministic transfer-timeout roller (disabled by default:
    /// `new` builds a fault-free engine).
    faults: FaultRoller,
    /// Retry budget per timing-out transfer (from the fault plan).
    fault_max_retries: u32,
    /// Base backoff delay between retries (from the fault plan).
    fault_backoff_base: u64,
    /// The most recent retry-budget exhaustion, if any (surfaced by
    /// deadlock diagnostics and reports).
    last_escalation: Option<FaultEscalation>,
    /// Activity counters.
    pub stats: DmaStats,
}

impl Dmac {
    /// Builds an idle, fault-free DMAC.
    pub fn new(cfg: DmaConfig) -> Self {
        Self::with_faults(cfg, &FaultConfig::none(), 0)
    }

    /// Builds an idle DMAC under a fault plan. `instance` is the tile's
    /// core id, so every tile's engine draws an independent fault
    /// stream.
    pub fn with_faults(cfg: DmaConfig, fault: &FaultConfig, instance: u64) -> Self {
        Dmac {
            cfg,
            tag_done_at: [0; NUM_TAGS],
            engine_free_at: 0,
            faults: FaultRoller::new(fault, FaultSite::DmaTimeout, instance),
            fault_max_retries: fault.max_retries,
            fault_backoff_base: fault.backoff_base,
            last_escalation: None,
            stats: DmaStats::default(),
        }
    }

    /// Issues a transfer at cycle `now`; returns its completion cycle.
    ///
    /// The functional copy is performed immediately by the machine (DMA
    /// transfers are coherent, and the program must `dma-synch` before
    /// touching the data); this method provides the completion time used
    /// by `dma-synch` and by the directory presence bits.
    pub fn issue(&mut self, op: DmaOp, bytes: u64, tag: u8, now: u64) -> u64 {
        let start = (now + self.cfg.setup_latency).max(self.engine_free_at);
        let stream = bytes.div_ceil(self.cfg.bytes_per_cycle.max(1));
        let mut done = start + self.cfg.first_data_latency + stream;
        // Pipelined engine: streaming of the next command may overlap the
        // first-data latency of this one.
        self.engine_free_at = start + stream;
        self.stats.busy_cycles += stream;
        // Fault site: the transfer may time out. Each timeout waits an
        // exponential backoff and re-streams; past the retry budget the
        // timeout escalates (structured, counted) and the transfer is
        // completed as-is — recovery is bounded, never a wedge.
        let mut attempt: u32 = 0;
        while self.faults.roll() {
            if attempt >= self.fault_max_retries {
                self.stats.escalations += 1;
                self.last_escalation = Some(FaultEscalation {
                    site: FaultSite::DmaTimeout,
                    attempts: attempt,
                    cycle: done,
                });
                break;
            }
            let backoff = backoff_delay(self.fault_backoff_base, attempt);
            attempt += 1;
            self.stats.retries += 1;
            done += backoff + stream;
            self.engine_free_at += stream;
            self.stats.busy_cycles += stream;
        }
        let t = &mut self.tag_done_at[tag as usize % NUM_TAGS];
        *t = (*t).max(done);
        match op {
            DmaOp::Get => {
                self.stats.gets += 1;
                self.stats.bytes_get += bytes;
            }
            DmaOp::Put => {
                self.stats.puts += 1;
                self.stats.bytes_put += bytes;
            }
        }
        done
    }

    /// Cycle at which all transfers with `tag` issued so far complete.
    pub fn tag_done_at(&self, tag: u8) -> u64 {
        self.tag_done_at[tag as usize % NUM_TAGS]
    }

    /// Executes a `dma-synch` at `now`: returns the cycle when the wait
    /// ends (`now` if the tagged transfers already finished).
    pub fn synch(&mut self, tag: u8, now: u64) -> u64 {
        self.stats.synchs += 1;
        self.tag_done_at(tag).max(now)
    }

    /// True when every issued transfer has completed by `now`.
    pub fn idle_at(&self, now: u64) -> bool {
        self.engine_free_at <= now
    }

    /// Bitmask of tags with transfers still in flight at `now` (bit
    /// *t* set ⇔ tag *t* completes after `now`) — deadlock diagnostics.
    pub fn in_flight_tags(&self, now: u64) -> u8 {
        self.tag_done_at
            .iter()
            .enumerate()
            .filter(|&(_, &done)| done > now)
            .fold(0u8, |m, (t, _)| m | (1 << t))
    }

    /// The most recent retry-budget exhaustion, if any.
    pub fn last_escalation(&self) -> Option<FaultEscalation> {
        self.last_escalation
    }

    /// The earliest DMA event strictly after `now` — the engine freeing
    /// up or a tagged transfer landing — if any: the DMAC contribution to
    /// the memory-side event horizon the cycle skipper must not jump
    /// past.
    pub fn next_event_after(&self, now: u64) -> Option<u64> {
        std::iter::once(self.engine_free_at)
            .chain(self.tag_done_at.iter().copied())
            .filter(|&t| t > now)
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dmac() -> Dmac {
        Dmac::new(DmaConfig {
            setup_latency: 10,
            first_data_latency: 100,
            bytes_per_cycle: 16,
        })
    }

    #[test]
    fn single_transfer_timing() {
        let mut d = dmac();
        // 1024 bytes at 16 B/cycle = 64 cycles streaming.
        let done = d.issue(DmaOp::Get, 1024, 0, 0);
        assert_eq!(done, 10 + 100 + 64);
        assert_eq!(d.tag_done_at(0), done);
        assert_eq!(d.stats.gets, 1);
        assert_eq!(d.stats.bytes_get, 1024);
    }

    #[test]
    fn transfers_pipeline_on_engine() {
        let mut d = dmac();
        let a = d.issue(DmaOp::Get, 1024, 0, 0);
        let b = d.issue(DmaOp::Get, 1024, 0, 0);
        // The second transfer streams right after the first: it completes
        // one stream-time later, not one full latency later.
        assert_eq!(b, a + 64);
    }

    #[test]
    fn tags_track_independently() {
        let mut d = dmac();
        let a = d.issue(DmaOp::Get, 64, 0, 0);
        let b = d.issue(DmaOp::Put, 64, 1, 0);
        assert_eq!(d.tag_done_at(0), a);
        assert_eq!(d.tag_done_at(1), b);
        assert_eq!(d.synch(0, 0), a);
        assert_eq!(d.synch(1, 0), b);
        // Synch after completion returns `now`.
        assert_eq!(d.synch(0, b + 50), b + 50);
        assert_eq!(d.stats.synchs, 3);
    }

    #[test]
    fn idle_detection() {
        // "Idle" means the engine can accept a new command immediately;
        // with pipelining that happens once streaming ends, before the
        // in-flight data lands.
        let mut d = dmac();
        assert!(d.idle_at(0));
        let done = d.issue(DmaOp::Put, 256, 2, 5);
        let stream_end = 5 + 10 + 256u64.div_ceil(16);
        assert!(!d.idle_at(stream_end - 1));
        assert!(d.idle_at(stream_end));
        assert!(done > stream_end, "completion includes the data latency");
    }

    #[test]
    fn zero_byte_transfer_costs_setup_only() {
        let mut d = dmac();
        let done = d.issue(DmaOp::Get, 0, 0, 0);
        assert_eq!(done, 10 + 100);
    }

    #[test]
    fn in_flight_tags_track_completions() {
        let mut d = dmac();
        let a = d.issue(DmaOp::Get, 64, 0, 0);
        let b = d.issue(DmaOp::Put, 64, 3, 0);
        assert_eq!(d.in_flight_tags(0), 0b1001);
        assert_eq!(d.in_flight_tags(a), 0b1000, "tag 0 landed at {a}");
        assert_eq!(d.in_flight_tags(b), 0, "all transfers landed");
    }

    #[test]
    fn timeouts_retry_with_exponential_backoff_then_escalate() {
        use crate::fault::FaultConfig;
        // Rate 1.0: the transfer times out on every draw, retries
        // max_retries times (backoff 8, 16), then escalates and
        // completes anyway.
        let plan = FaultConfig {
            max_retries: 2,
            backoff_base: 8,
            ..FaultConfig::uniform(5, 1.0)
        };
        let cfg = DmaConfig {
            setup_latency: 10,
            first_data_latency: 100,
            bytes_per_cycle: 16,
        };
        let mut d = Dmac::with_faults(cfg.clone(), &plan, 0);
        let stream = 1024u64 / 16; // 64 cycles
        let done = d.issue(DmaOp::Get, 1024, 0, 0);
        assert_eq!(done, 10 + 100 + 64 + (8 + 64) + (16 + 64));
        assert_eq!(d.stats.retries, 2);
        assert_eq!(d.stats.escalations, 1);
        let esc = d.last_escalation().expect("budget exhausted");
        assert_eq!(esc.attempts, 2);
        assert_eq!(esc.cycle, done);
        assert_eq!(d.stats.busy_cycles, 3 * stream, "each retry re-streams");
        // Same plan, fresh engine: identical replay. Zero-rate plan:
        // bit-identical to the fault-free engine.
        let mut e = Dmac::with_faults(cfg.clone(), &plan, 0);
        assert_eq!(e.issue(DmaOp::Get, 1024, 0, 0), done);
        let mut z = Dmac::with_faults(cfg, &FaultConfig::none(), 0);
        assert_eq!(z.issue(DmaOp::Get, 1024, 0, 0), 10 + 100 + 64);
        assert_eq!(z.stats.retries, 0);
        assert!(z.last_escalation().is_none());
    }
}
