//! Regenerates Figure 7: microbenchmark overhead in all modes as the
//! share of potentially incoherent references grows.
//!
//! ```text
//! cargo run --release -p hsim-bench --bin fig7 [--test-scale]
//! ```

use hsim::prelude::*;
use hsim_bench::Table;

fn main() {
    let n = if std::env::args().any(|a| a == "--test-scale") {
        8 * 1024
    } else {
        64 * 1024
    };
    let pts = fig7(n, 10, Parallelism::Serial).expect("simulation failed");
    println!("FIGURE 7: work-phase overhead vs % of guarded references");
    println!("(paper: RD flat at 1.00; WR and RD/WR linear up to ~1.28 at 100%,");
    println!(" driven by a ~26% instruction increase from the double store)");
    println!();
    let t = Table::new(&[6, 6, 10, 10]);
    t.row(&["mode", "%", "overhead", "insts"].map(String::from));
    t.sep();
    for p in &pts {
        t.row(&[
            p.mode.name().into(),
            format!("{}", p.pct),
            format!("{:.3}", p.overhead),
            format!("{:.3}", p.inst_ratio),
        ]);
    }
    // Headline claims.
    let rd_max = pts
        .iter()
        .filter(|p| p.mode == MicroMode::Rd)
        .map(|p| p.overhead)
        .fold(0.0, f64::max);
    let wr100 = pts
        .iter()
        .find(|p| p.mode == MicroMode::Wr && p.pct == 100)
        .unwrap();
    println!();
    println!("RD max overhead: {:.3} (paper: 1.00)", rd_max);
    println!(
        "WR @100%: overhead {:.3}, insts {:.3} (paper: 1.28, 1.26)",
        wr100.overhead, wr100.inst_ratio
    );
}
