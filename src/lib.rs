//! # hsim — hybrid memory system with a hardware/software coherence protocol
//!
//! A from-scratch reproduction of *"Hardware-Software Coherence Protocol
//! for the Coexistence of Caches and Local Memories"* (Alvarez et al.,
//! SC 2012): a cycle-level out-of-order core with a cache hierarchy
//! **and** a scratchpad local memory, kept coherent by a per-core
//! hardware directory plus compiler-emitted guarded memory instructions.
//!
//! **Start with `ARCHITECTURE.md` in the repository root**: the crate
//! map, the tile/backside block diagram, the lifetime of a load (LM hit
//! / cache hit / L3 bank / DRAM row), and how the event-horizon
//! scheduler coexists with the banked backside bit-identically.
//!
//! ## Quickstart
//!
//! ```
//! use hsim::prelude::*;
//!
//! // The paper's running example: a[i] = b[i] with an update through a
//! // pointer the compiler cannot disambiguate from `a`.
//! let mut kb = KernelBuilder::new("example");
//! let a = kb.array_i64("a", 4096);
//! let b = kb.array_i64_init("b", &(0..4096).collect::<Vec<i64>>());
//! kb.begin_loop(4096);
//! let ra = kb.ref_affine(a, 1, 0);
//! let rb = kb.ref_affine(b, 1, 0);
//! kb.stmt(ra, Expr::Ref(rb));
//! kb.end_loop();
//! let kernel = kb.build().unwrap();
//!
//! // Compile for the coherent hybrid memory system and simulate.
//! let report = RunSpec::new(&kernel).run().unwrap().into_single();
//! assert!(report.cycles > 0);
//!
//! // The same kernel sharded across the cores of one 2-core machine:
//! // per-core tiles (pipeline, L1/L2, LM, directory) in front of a
//! // shared L3 + DRAM backside, ticked in lock step. The protocol is
//! // strictly per core (§3); only timing couples the cores.
//! let multi = RunSpec::new(&kernel).cores(2).run().unwrap().into_multi();
//! assert_eq!(multi.n_cores(), 2);
//! assert!(multi.makespan < report.cycles, "half the iterations per core");
//! ```
//!
//! ## Crate map
//!
//! | crate | contents |
//! |---|---|
//! | [`isa`] | the simulated ISA: guarded/oracle memory ops, DMA, assembler |
//! | [`mem`] | caches, MSHRs, prefetcher, TLB, LM, DMAC, and the shared backside: banked L3 + row-buffer DRAM controller (`SharedBackside`, `DramController`) |
//! | [`coherence`] | the directory (Figure 4), Figure 6 state machine, runtime checker |
//! | [`core`] | 4-wide out-of-order core (Table 1) with the event-horizon cycle skipper |
//! | [`energy`] | Wattch-style activity-based energy model |
//! | [`compiler`] | loop IR, classification, tiling, guarded codegen, double store, kernel sharding (`Kernel::shard`, `Kernel::shard_weighted`, per-tile LM budgets via `compile_with_lm`) |
//! | [`workloads`] | Table 2 microbenchmark, six NAS-signature kernels, communication workloads (`workloads::comm`) |
//! | [`machine`] | the assembled systems — hybrid coherent / hybrid oracle / cache-based — as single-core [`Machine`]s or N-core [`MultiMachine`]s sharing one backside, homogeneous or with per-tile configurations |
//! | [`cluster`] | hierarchical clusters: per-cluster backside slices (own L3 + DRAM channel), epoch-synchronized host threads, serial oracle ([`run_clusters`], [`ClusterTopology`]) |
//! | [`experiments`] | [`RunSpec`] (the one way to run kernels on any machine shape), sweep drivers regenerating every table and figure (serial or host-parallel via [`Parallelism`]), the communication sweep and the open-loop request-serving driver |
//!
//! ## Multicore model
//!
//! [`Machine::new_multi`] (or [`MultiMachine::for_kernels`]) builds an
//! N-core machine: everything the paper adds — local memory, coherence
//! directory, guarded AGU path, DMAC — is replicated per core and never
//! interacts across cores, exactly the §3 integration argument. The
//! cores share a banked L3 (per-bank round-robin port arbitration) and
//! one DRAM channel with per-bank row buffers; per-core contention
//! (bus-wait cycles, bank conflicts, DRAM lines and row outcomes) is
//! reported in each core's [`RunReport`] and aggregated in
//! [`MultiRunReport`], partitioning the chip totals exactly.
//! [`compiler::Kernel::shard`] splits one kernel into the disjoint
//! per-core slices the paper's evaluation model assumes, and
//! [`experiments::backside_sweep`] measures row-buffer locality and
//! bank contention across kernels and core counts
//! (`cargo run -p hsim-bench --bin backside`).
//!
//! Machines are built **per tile**: [`Machine::new_multi_hetero`] /
//! [`machine::MultiMachine::for_kernels_hetero`] take one
//! `MachineConfig` per core, so hybrid and cache-based tiles — or
//! hybrid tiles with different LM budgets — coexist on one chip under
//! one inter-core protocol (the paper's §3/§6 coexistence claim,
//! simulated). [`compiler::Kernel::shard_weighted`] matches iteration
//! counts to tile strength, and [`experiments::hetero_sweep`] sweeps
//! hybrid:cache ratios and LM asymmetry
//! (`cargo run -p hsim-bench --bin hetero`).
//!
//! ## Cycle-skipping scheduler
//!
//! Long runs are dominated by *dead time*: the ROB head waiting on a
//! DRAM-latency completion, fetch stalled behind an I-miss, a DMA
//! transfer in flight. The simulator fast-forwards those stretches
//! instead of walking them cycle by cycle. Each core reports its **event
//! horizon** — the earliest cycle at which anything can change
//! (`Core::next_event_at`: ROB-head completion, producer readiness,
//! fetch resume), clamped by the memory side's pending work
//! (`mem::MemSystem::next_event_at`: outstanding MSHR fills, in-flight
//! DMA, every busy L3 bank port, the DRAM channel and every DRAM bank)
//! and by the watchdog/cycle-budget deadlines —
//! and `Core::advance_to` jumps over the provably idle cycles in one
//! step. [`MultiMachine::run`] coordinates the jump across tiles with a
//! per-tile horizon min-heap, rotating the round-robin arbitration
//! origin by the skipped distance, so every statistic stays
//! **bit-identical** to the naive lock-step loop (asserted by the
//! `skip_equivalence` tests against the `lockstep: true` escape hatch,
//! [`MachineConfig::with_lockstep`]). `CoreStats::skipped_cycles` and
//! `RunReport::skipped_cycles` report how much dead time each workload
//! had; the `simspeed` bench binary turns that into a
//! simulated-cycles-per-host-second trajectory (`BENCH_simspeed.json`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod experiments;
pub mod machine;
pub mod metrics;

pub use hsim_coherence as coherence;
pub use hsim_compiler as compiler;
pub use hsim_core as core;
pub use hsim_energy as energy;
pub use hsim_isa as isa;
pub use hsim_mem as mem;
pub use hsim_workloads as workloads;

pub use cluster::{
    cross_cluster_fallbacks, run_clusters, ClusterConfig, ClusterError, ClusterFailure,
    ClusterRunReport, ClusterTopology,
};
pub use experiments::{
    backside_sweep, coherence_sweep, comm_sweep, compare_systems, compile_for_tile, fig7, fig8,
    geomean, hetero_sweep, parallel_map, protocol_sweep, request_serving, request_serving_sweep,
    scaling_sweep, BacksideSweepRow, CoherenceSweepRow, CommSweepRow, HeteroSweepRow,
    MultiRunError, Parallelism, ProtocolSweepRow, RunOutcome, RunSpec, ScalingRow,
};
#[allow(deprecated)]
pub use experiments::{
    run_kernel, run_kernel_clustered, run_kernel_multi, run_kernel_multi_hetero,
    run_kernel_multi_profiled, run_kernel_multi_with, run_kernel_profiled, run_kernel_verified,
    run_kernel_with,
};
pub use machine::{Machine, MachineConfig, MultiMachine, SysMode, World};
pub use metrics::{
    activity, LatencyHistogram, MultiRunReport, RequestServingReport, RunReport, NOMINAL_CLOCK_HZ,
};

/// The most common imports for building and running kernels.
pub mod prelude {
    pub use crate::cluster::{
        ClusterConfig, ClusterError, ClusterFailure, ClusterRunReport, ClusterTopology,
    };
    pub use crate::experiments::{
        backside_sweep, coherence_sweep, comm_sweep, compare_systems, compile_for_tile, fig7, fig8,
        hetero_sweep, protocol_sweep, request_serving, request_serving_sweep, scaling_sweep,
        BacksideSweepRow, CoherenceSweepRow, CommSweepRow, HeteroSweepRow, MultiRunError,
        Parallelism, ProtocolSweepRow, RunOutcome, RunSpec, ScalingRow,
    };
    #[allow(deprecated)]
    pub use crate::experiments::{
        run_kernel, run_kernel_clustered, run_kernel_multi, run_kernel_multi_hetero,
        run_kernel_multi_profiled, run_kernel_multi_with, run_kernel_profiled, run_kernel_verified,
        run_kernel_with,
    };
    pub use crate::machine::{Machine, MachineConfig, MultiMachine, SysMode};
    pub use crate::metrics::{
        LatencyHistogram, MultiRunReport, RequestServingReport, RunReport, NOMINAL_CLOCK_HZ,
    };
    pub use hsim_compiler::{
        compile, compile_with_lm, interpret, CodegenMode, Expr, Kernel, KernelBuilder,
    };
    pub use hsim_core::config::{CoherenceConfig, CoherenceMode};
    pub use hsim_isa::{Phase, Program, ProgramBuilder, Route};
    pub use hsim_mem::{FaultConfig, FaultEscalation, FaultSite};
    pub use hsim_workloads::{microbench, MicroMode, MicrobenchConfig, Scale};
}
