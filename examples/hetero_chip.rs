//! A heterogeneous chip: hybrid (LM + directory) tiles and plain
//! cache-based tiles **coexisting on one machine**, sharing one banked
//! L3 + DRAM backside — the paper's central claim (§3, §6) actually
//! simulated instead of argued.
//!
//! The sibling of `multicore.rs`: where that example runs four
//! identical hybrid tiles, this one builds a 2-hybrid/2-cache 4-core
//! chip, shards one NAS kernel across it with weights matched to tile
//! strength (`Kernel::shard_weighted`), and runs the same chip under
//! both inter-core coherence modes. Under `Mesi` the read-only gathered
//! table is served from shared directory-tracked lines to *both* kinds
//! of tile at once — a cache-based tile and a hybrid tile reading one
//! physical copy while each hybrid tile's private LM protocol runs
//! untouched above it.
//!
//! ```text
//! cargo run --release --example hetero_chip
//! ```

use hsim::prelude::*;
use hsim_workloads::nas;

fn main() {
    let kernel = nas::cg(Scale::Test);
    println!(
        "one 4-core chip on weighted shards of {}: tiles 0-1 hybrid (LM + directory), \
         tiles 2-3 cache-based (no LM), one shared L3/DRAM backside:",
        kernel.name
    );

    // The hybrid tiles are faster on CG, so they take double iteration
    // shares; the largest-remainder split keeps every slice contiguous
    // and disjoint.
    let modes = [
        SysMode::HybridCoherent,
        SysMode::HybridCoherent,
        SysMode::CacheBased,
        SysMode::CacheBased,
    ];
    let weights = [2u64, 2, 1, 1];
    let shards = kernel.shard_weighted(&weights).expect("CG shards cleanly");
    for cm in [CoherenceMode::Replicate, CoherenceMode::Mesi] {
        // Each shard compiles for its own tile's system: guarded loads
        // and DMA tiling on the hybrid tiles, plain cacheable code on
        // the cache-based ones. The data layout is mode-independent, so
        // the shards still agree on every shared array's address.
        let cfgs: Vec<MachineConfig> = modes
            .iter()
            .map(|&m| {
                let mut c = MachineConfig::for_mode(m).with_coherence(cm);
                c.track_coherence = true; // §3: the protocols must not interact
                c
            })
            .collect();
        let compiled: Vec<_> = shards
            .iter()
            .zip(&cfgs)
            .map(|(s, cfg)| (compile_for_tile(s, cfg), s.clone()))
            .collect();
        let mut machine = MultiMachine::for_kernels_hetero(cfgs, &compiled);
        machine.run().expect("all tiles halt");
        let cks: Vec<_> = compiled.iter().map(|(ck, _)| ck.clone()).collect();
        let report = MultiRunReport::collect(&machine, &cks);

        println!("\n{cm:?}: {}", report.mode_summary());
        for r in &report.per_core {
            println!(
                "  core {} ({:>15}, {} iters): {:>7} cycles, {:>5} bus-wait, \
                 {:>4} DRAM reads, {:>3} shared hits, {} violations",
                r.core_id,
                r.mode.name(),
                compiled[r.core_id].1.loops[0].n,
                r.cycles,
                r.bus_wait_cycles,
                r.dram_reads,
                r.coh_shared_hits,
                r.violations
            );
        }
        println!(
            "  makespan {} cycles; DRAM reads {}; shared hits {}; invalidations {}; \
             replication fallbacks {}; coherence violations {}",
            report.makespan,
            report.total_dram_reads(),
            report.total_shared_hits(),
            report.total_invalidations(),
            report.replication_fallbacks,
            report.total_violations()
        );
    }
    println!(
        "\nunder Mesi the chip fetches CG's gathered table from DRAM once and serves \
         hybrid and cache-based tiles from the same directory-tracked lines; the \
         per-tile hybrid LM protocol observes zero violations either way (§3: the \
         protocols do not interact)."
    );
}
