//! Activity aggregation and the energy computation.

use crate::params::EnergyParams;

/// Raw event counts collected by the simulator. The machine in the root
/// crate fills this from `CoreStats`, the cache statistics, the DMA
/// controller and the directory.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Activity {
    /// Simulated cycles.
    pub cycles: u64,
    /// Instructions fetched.
    pub fetched: u64,
    /// Instructions dispatched.
    pub dispatched: u64,
    /// Instructions issued (first time).
    pub issued: u64,
    /// Issue slots re-executed after load misses (replays).
    pub replayed: u64,
    /// Instructions committed.
    pub committed: u64,
    /// Committed FP operations.
    pub fp_ops: u64,
    /// Load/store queue searches (loads + stores).
    pub memops: u64,
    /// Branch predictor events (lookups + updates).
    pub bpred_events: u64,
    /// BTB lookups.
    pub btb_lookups: u64,
    /// L1I + L1D total accesses (Table 3 accounting).
    pub l1_accesses: u64,
    /// L2 total accesses.
    pub l2_accesses: u64,
    /// L3 total accesses.
    pub l3_accesses: u64,
    /// Lines moved between cache levels (fills + write-backs).
    pub bus_lines: u64,
    /// LM CPU accesses.
    pub lm_accesses: u64,
    /// LM DMA traffic in 64-byte blocks.
    pub lm_dma_blocks: u64,
    /// TLB lookups.
    pub tlb_lookups: u64,
    /// Prefetcher observations.
    pub prefetch_obs: u64,
    /// Directory CAM lookups.
    pub dir_lookups: u64,
    /// Directory entry updates.
    pub dir_updates: u64,
    /// DMA engine traffic in 64-byte blocks.
    pub dma_blocks: u64,
    /// DRAM line transfers (reads + writes).
    pub dram_lines: u64,
    /// Whether an LM is present (its leakage is charged only then).
    pub has_lm: bool,
}

/// Energy per Figure 10 component group, in nanojoules.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Core pipeline: fetch/rename/issue/commit, ALUs, LSQ, predictors,
    /// replays, core leakage.
    pub cpu: f64,
    /// Cache hierarchy: L1I + L1D + L2 + L3 dynamic + leakage.
    pub caches: f64,
    /// Local memory: CPU accesses + DMA traffic + leakage.
    pub lm: f64,
    /// Others: prefetchers, DMA engine, buses, TLB and the coherence
    /// directory (reported separately in `directory` as well).
    pub others: f64,
    /// Of `others`: the coherence directory alone (Figure 8's analysis).
    pub directory: f64,
    /// Off-chip DRAM (excluded from `total`, reported for completeness).
    pub dram: f64,
}

impl EnergyBreakdown {
    /// Total on-chip energy (the paper's Figure 8/10 metric).
    pub fn total(&self) -> f64 {
        self.cpu + self.caches + self.lm + self.others
    }
}

/// The energy model: parameters + evaluation.
#[derive(Clone, Debug, Default)]
pub struct EnergyModel {
    /// The parameter set in use.
    pub params: EnergyParams,
}

impl EnergyModel {
    /// Builds a model with the default 45 nm parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Evaluates the energy of a run.
    pub fn evaluate(&self, a: &Activity) -> EnergyBreakdown {
        let p = &self.params;
        let cpu = a.fetched as f64 * p.fetch_per_inst
            + a.dispatched as f64 * p.dispatch_per_inst
            + (a.issued + a.replayed) as f64 * p.issue_per_inst
            + a.committed as f64 * p.commit_per_inst
            + a.fp_ops as f64 * p.fp_extra
            + a.memops as f64 * p.lsq_per_memop
            + a.bpred_events as f64 * p.bpred_per_event
            + a.btb_lookups as f64 * p.btb_per_lookup
            + a.cycles as f64 * p.core_leak_per_cycle;
        let caches = a.l1_accesses as f64 * p.l1_per_access
            + a.l2_accesses as f64 * p.l2_per_access
            + a.l3_accesses as f64 * p.l3_per_access
            + a.cycles as f64 * p.cache_leak_per_cycle;
        let lm = if a.has_lm {
            a.lm_accesses as f64 * p.lm_per_access
                + a.lm_dma_blocks as f64 * p.lm_per_dma_block
                + a.cycles as f64 * p.lm_leak_per_cycle
        } else {
            0.0
        };
        let directory =
            a.dir_lookups as f64 * p.dir_per_lookup + a.dir_updates as f64 * p.dir_per_update;
        let others = a.tlb_lookups as f64 * p.tlb_per_lookup
            + a.prefetch_obs as f64 * p.prefetch_per_obs
            + a.dma_blocks as f64 * p.dma_per_block
            + a.bus_lines as f64 * p.bus_per_line
            + directory;
        let dram = a.dram_lines as f64 * p.dram_per_line;
        EnergyBreakdown {
            cpu,
            caches,
            lm,
            others,
            directory,
            dram,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_activity() -> Activity {
        Activity {
            cycles: 1000,
            fetched: 4000,
            dispatched: 3800,
            issued: 3700,
            replayed: 100,
            committed: 3600,
            fp_ops: 500,
            memops: 1200,
            bpred_events: 600,
            btb_lookups: 300,
            l1_accesses: 1200,
            l2_accesses: 80,
            l3_accesses: 20,
            bus_lines: 90,
            lm_accesses: 0,
            lm_dma_blocks: 0,
            tlb_lookups: 1200,
            prefetch_obs: 1200,
            dir_lookups: 0,
            dir_updates: 0,
            dma_blocks: 0,
            dram_lines: 10,
            has_lm: false,
        }
    }

    #[test]
    fn zero_activity_is_leakage_only() {
        let m = EnergyModel::new();
        let a = Activity {
            cycles: 100,
            has_lm: true,
            ..Activity::default()
        };
        let e = m.evaluate(&a);
        let p = &m.params;
        let want = 100.0 * (p.core_leak_per_cycle + p.cache_leak_per_cycle + p.lm_leak_per_cycle);
        assert!((e.total() - want).abs() < 1e-9);
        assert_eq!(e.dram, 0.0);
    }

    #[test]
    fn no_lm_means_no_lm_energy() {
        let m = EnergyModel::new();
        let e = m.evaluate(&base_activity());
        assert_eq!(e.lm, 0.0);
    }

    #[test]
    fn directory_is_part_of_others() {
        let m = EnergyModel::new();
        let mut a = base_activity();
        let e0 = m.evaluate(&a);
        a.dir_lookups = 1000;
        a.dir_updates = 100;
        let e1 = m.evaluate(&a);
        assert!(e1.directory > 0.0);
        assert!((e1.others - e0.others - e1.directory).abs() < 1e-9);
        assert_eq!(e1.cpu, e0.cpu);
        assert_eq!(e1.caches, e0.caches);
    }

    #[test]
    fn energy_is_monotone_in_activity() {
        let m = EnergyModel::new();
        let a = base_activity();
        let e0 = m.evaluate(&a).total();
        for f in [
            |a: &mut Activity| a.l2_accesses += 1000,
            |a: &mut Activity| a.issued += 1000,
            |a: &mut Activity| a.replayed += 1000,
            |a: &mut Activity| a.cycles += 1000,
        ] {
            let mut b = a.clone();
            f(&mut b);
            assert!(m.evaluate(&b).total() > e0);
        }
    }

    #[test]
    fn replays_cost_like_issues() {
        let m = EnergyModel::new();
        let mut a = base_activity();
        let e0 = m.evaluate(&a).cpu;
        a.replayed += 500;
        let e1 = m.evaluate(&a).cpu;
        assert!((e1 - e0 - 500.0 * m.params.issue_per_inst).abs() < 1e-9);
    }

    #[test]
    fn dram_excluded_from_total() {
        let m = EnergyModel::new();
        let mut a = base_activity();
        let t0 = m.evaluate(&a).total();
        a.dram_lines += 1_000_000;
        let e = m.evaluate(&a);
        assert_eq!(e.total(), t0);
        assert!(e.dram > 0.0);
    }
}
