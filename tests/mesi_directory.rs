//! Integration tests of the per-L3-bank MESI directory
//! (`CoherenceMode::Mesi`) against the `Replicate` baseline:
//!
//! * timing-only: committed architectural state (final memory images,
//!   per-core committed counts) is identical in both modes;
//! * sharing works: sharded CG reads less DRAM under `Mesi` because the
//!   gathered table is fetched once per chip;
//! * the §3 non-interaction claim: the hybrid protocol's runtime
//!   tracker finds exactly zero violations under the real inter-core
//!   protocol, same as under replication.

use hsim::compiler::compile;
use hsim::prelude::*;
use hsim_workloads::nas;

/// Shards `kernel`, runs it on an `n`-core machine built from `cfg`,
/// and returns the report plus every shard's final array images.
fn run_sharded(
    kernel: &hsim_compiler::Kernel,
    n: usize,
    cfg: MachineConfig,
) -> (MultiRunReport, Vec<Vec<Vec<u64>>>) {
    let shards = kernel.shard(n).expect("kernel must shard");
    let compiled: Vec<_> = shards
        .iter()
        .map(|s| (compile(s, cfg.mode.codegen()), s.clone()))
        .collect();
    let mut m = MultiMachine::for_kernels(cfg, &compiled);
    m.run().expect("run");
    let images: Vec<Vec<Vec<u64>>> = m
        .tiles
        .iter()
        .zip(&compiled)
        .map(|(tile, (ck, shard))| {
            (0..shard.arrays.len())
                .map(|id| tile.read_array(ck, shard, id))
                .collect()
        })
        .collect();
    let cks: Vec<_> = compiled.into_iter().map(|(ck, _)| ck).collect();
    (MultiRunReport::collect(&m, &cks), images)
}

fn cfg_with(mode: SysMode, cm: CoherenceMode) -> MachineConfig {
    MachineConfig::for_mode(mode).with_coherence(cm)
}

#[test]
fn modes_only_change_timing_never_architectural_state() {
    let kernel = nas::cg(Scale::Test);
    for mode in SysMode::ALL {
        let (rep, rep_img) = run_sharded(&kernel, 4, cfg_with(mode, CoherenceMode::Replicate));
        let (mesi, mesi_img) = run_sharded(&kernel, 4, cfg_with(mode, CoherenceMode::Mesi));
        assert_eq!(rep_img, mesi_img, "{mode:?}: memory images diverged");
        for (r, m) in rep.per_core.iter().zip(&mesi.per_core) {
            assert_eq!(
                r.committed, m.committed,
                "{mode:?} core {}: committed work diverged",
                r.core_id
            );
        }
    }
}

#[test]
fn sharded_cg_reads_less_dram_under_mesi() {
    // The acceptance shape: CG's gathered x table (replicated whole by
    // the sharder) is fetched once per core under Replicate and once
    // per chip under Mesi.
    let kernel = nas::cg(Scale::Test);
    let (rep, _) = run_sharded(
        &kernel,
        4,
        cfg_with(SysMode::HybridCoherent, CoherenceMode::Replicate),
    );
    let (mesi, _) = run_sharded(
        &kernel,
        4,
        cfg_with(SysMode::HybridCoherent, CoherenceMode::Mesi),
    );
    assert!(
        mesi.total_dram_reads() < rep.total_dram_reads(),
        "Mesi must read less DRAM: {} vs {}",
        mesi.total_dram_reads(),
        rep.total_dram_reads()
    );
    assert!(
        mesi.total_shared_hits() > 0,
        "the directory must serve shared hits"
    );
    assert_eq!(
        rep.total_shared_hits(),
        0,
        "Replicate has no sharing machinery"
    );
}

#[test]
fn replicate_mode_matches_the_default_machine_bit_for_bit() {
    // `with_coherence(Replicate)` must be the PR-3 machine exactly —
    // same makespan, same per-core cycle counts — whatever the
    // HSIM_COHERENCE environment says.
    let kernel = nas::cg(Scale::Test);
    let (a, _) = run_sharded(
        &kernel,
        4,
        cfg_with(SysMode::HybridCoherent, CoherenceMode::Replicate),
    );
    let (b, _) = run_sharded(
        &kernel,
        4,
        cfg_with(SysMode::HybridCoherent, CoherenceMode::Replicate),
    );
    assert_eq!(a.makespan, b.makespan);
    for (x, y) in a.per_core.iter().zip(&b.per_core) {
        assert_eq!(x.cycles, y.cycles);
        assert_eq!(x.bus_wait_cycles, y.bus_wait_cycles);
    }
}

#[test]
fn hybrid_tracker_stays_clean_under_the_inter_core_protocol() {
    // The §3 non-interaction claim, end to end: with the runtime
    // checker replaying every LM map/writeback and cache residency
    // event, turning the MESI directory on must not create (or mask) a
    // single hybrid-protocol violation.
    let kernel = nas::is(Scale::Test);
    for cm in [CoherenceMode::Replicate, CoherenceMode::Mesi] {
        let mut cfg = cfg_with(SysMode::HybridCoherent, cm);
        cfg.track_coherence = true;
        let shards = kernel.shard(2).expect("shards");
        let compiled: Vec<_> = shards
            .iter()
            .map(|s| (compile(s, cfg.mode.codegen()), s.clone()))
            .collect();
        let mut m = MultiMachine::for_kernels(cfg, &compiled);
        m.run().expect("run");
        assert_eq!(m.violations(), 0, "{cm:?}: hybrid invariants violated");
    }
}

#[test]
fn mesi_coherence_counters_reach_the_reports() {
    let kernel = nas::cg(Scale::Test);
    let (mesi, _) = run_sharded(
        &kernel,
        4,
        cfg_with(SysMode::HybridCoherent, CoherenceMode::Mesi),
    );
    // Sharing happened and was attributed to cores (partitioned, so the
    // totals are sums of per-core shares by construction).
    let per_core_hits: Vec<u64> = mesi.per_core.iter().map(|r| r.coh_shared_hits).collect();
    assert_eq!(per_core_hits.iter().sum::<u64>(), mesi.total_shared_hits());
    assert!(
        per_core_hits.iter().filter(|&&h| h > 0).count() >= 2,
        "several cores must benefit from sharing: {per_core_hits:?}"
    );
}

#[test]
fn diverged_shard_layouts_fall_back_to_replication() {
    // Uneven shards can lay the shared table out at different addresses
    // per shard (a sliced array whose per-shard size straddles an
    // LM-size alignment boundary shifts everything after it). Sharing a
    // range that is not the same slot in every layout would alias one
    // core's table with another core's unrelated private data, so such
    // arrays must silently stay replicated: zero sharing traffic, and
    // Mesi bit-identical to Replicate.
    let n = 8193u64; // 2 shards: 4097 vs 4096 elements -> 32776 vs 32768 bytes
    let mut kb = KernelBuilder::new("uneven");
    let a = kb.array_i64_init("a", &vec![1i64; n as usize]);
    let idx = kb.array_i64_init("idx", &(0..n).map(|i| (i % 4) as i64).collect::<Vec<_>>());
    let table = kb.array_i64_init("t", &[10, 20, 30, 40]);
    kb.begin_loop(n);
    let ra = kb.ref_affine(a, 1, 0);
    let ridx = kb.ref_affine(idx, 1, 0);
    let rt = kb.ref_indirect(table, ridx, 0);
    kb.stmt(ra, Expr::add(Expr::Ref(ra), Expr::Ref(rt)));
    kb.end_loop();
    let kernel = kb.build().unwrap();

    // Preconditions of the scenario: the table is marked shared, but
    // the two shards lay it out at different bases.
    let shards = kernel.shard(2).unwrap();
    assert!(shards.iter().all(|s| s.arrays[table].shared));
    let bases: Vec<u64> = shards
        .iter()
        .map(|s| compile(s, SysMode::HybridCoherent.codegen()).layout.arrays[table].base)
        .collect();
    assert_ne!(bases[0], bases[1], "the layouts must actually diverge");
    let _ = (a, idx);

    let (rep, rep_img) = run_sharded(
        &kernel,
        2,
        cfg_with(SysMode::HybridCoherent, CoherenceMode::Replicate),
    );
    let (mesi, mesi_img) = run_sharded(
        &kernel,
        2,
        cfg_with(SysMode::HybridCoherent, CoherenceMode::Mesi),
    );
    assert_eq!(mesi.total_shared_hits(), 0, "diverged table must not share");
    assert_eq!(mesi.total_invalidations(), 0);
    assert_eq!(
        rep.makespan, mesi.makespan,
        "with nothing registered, Mesi is the Replicate machine"
    );
    assert_eq!(rep_img, mesi_img);
    // The fallback is no longer silent: the report counts the one
    // shared-marked array whose layouts diverged — in both modes (the
    // registration runs regardless; only Mesi would have consulted it).
    assert_eq!(mesi.replication_fallbacks, 1, "fallback must be surfaced");
    assert_eq!(rep.replication_fallbacks, 1);

    // An evenly-splitting sibling (8192 iterations -> two 4096-element
    // slices, identical layouts) registers cleanly and reports zero.
    let even = {
        let n = 8192u64;
        let mut kb = KernelBuilder::new("even");
        let a = kb.array_i64_init("a", &vec![1i64; n as usize]);
        let idx = kb.array_i64_init("idx", &(0..n).map(|i| (i % 4) as i64).collect::<Vec<_>>());
        let table = kb.array_i64_init("t", &[10, 20, 30, 40]);
        kb.begin_loop(n);
        let ra = kb.ref_affine(a, 1, 0);
        let ridx = kb.ref_affine(idx, 1, 0);
        let rt = kb.ref_indirect(table, ridx, 0);
        kb.stmt(ra, Expr::add(Expr::Ref(ra), Expr::Ref(rt)));
        kb.end_loop();
        kb.build().unwrap()
    };
    let (even_rep, _) = run_sharded(
        &even,
        2,
        cfg_with(SysMode::HybridCoherent, CoherenceMode::Mesi),
    );
    assert_eq!(even_rep.replication_fallbacks, 0);
    assert!(
        even_rep.total_shared_hits() > 0,
        "even shards share cleanly"
    );
}

#[test]
fn coherence_sweep_driver_reports_the_cg_win() {
    let rows = coherence_sweep(
        &[nas::cg(Scale::Test)],
        &[1, 4],
        SysMode::HybridCoherent,
        Parallelism::Serial,
    )
    .expect("sweep");
    assert_eq!(rows.len(), 2);
    let one = &rows[0];
    assert_eq!(one.cores, 1);
    assert_eq!(
        one.makespan_replicate, one.makespan_mesi,
        "a lone core has nothing to share"
    );
    assert_eq!(one.dram_reads_replicate, one.dram_reads_mesi);
    let four = &rows[1];
    assert_eq!(four.cores, 4);
    assert!(four.dram_reads_mesi < four.dram_reads_replicate);
    assert!(four.shared_hits > 0);
}
