//! Reference interpreter: the functional ground truth.
//!
//! Executes a kernel directly over flat arrays, with no memory system, no
//! tiling and no coherence machinery. Every compiled variant (hybrid
//! coherent, hybrid oracle, cache-based) must leave exactly these values
//! in memory — the end-to-end statement of the paper's correctness claim,
//! and the oracle for the property-based tests.

use crate::ir::{Elem, Expr, Index, Kernel, LoopNest, RefId};

/// Interpretation errors (runtime bounds violations of indirect
/// references).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InterpError {
    /// The loop containing the faulting access.
    pub loop_idx: usize,
    /// Iteration number.
    pub iter: u64,
    /// The faulting reference.
    pub r: RefId,
    /// The out-of-range element index.
    pub idx: i64,
}

impl std::fmt::Display for InterpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "loop {} iter {}: ref {} index {} out of bounds",
            self.loop_idx, self.iter, self.r, self.idx
        )
    }
}

impl std::error::Error for InterpError {}

#[derive(Clone, Copy, PartialEq, Debug)]
enum Val {
    I(i64),
    F(f64),
}

impl Val {
    fn bits(self) -> u64 {
        match self {
            Val::I(v) => v as u64,
            Val::F(v) => v.to_bits(),
        }
    }
}

/// Runs the kernel and returns the final contents of every array as raw
/// element bits.
pub fn interpret(kernel: &Kernel) -> Result<Vec<Vec<u64>>, InterpError> {
    let mut arrays: Vec<Vec<u64>> = kernel
        .arrays
        .iter()
        .zip(&kernel.init)
        .map(|(decl, init)| {
            let mut v = init.clone();
            v.resize(decl.len as usize, 0);
            v
        })
        .collect();
    for (li, l) in kernel.loops.iter().enumerate() {
        for i in 0..l.n {
            for s in &l.stmts {
                let val = eval(kernel, l, &arrays, &s.value, i, li)?;
                let idx = ref_index(kernel, l, &arrays, s.target, i, li)?;
                arrays[l.refs[s.target].array][idx as usize] = val.bits();
            }
        }
    }
    Ok(arrays)
}

fn ref_index(
    kernel: &Kernel,
    l: &LoopNest,
    arrays: &[Vec<u64>],
    r: RefId,
    i: u64,
    li: usize,
) -> Result<i64, InterpError> {
    let mr = &l.refs[r];
    let idx = match mr.index {
        Index::Affine { scale, offset } => scale * i as i64 + offset,
        Index::Indirect { idx_ref, offset } => {
            let j = ref_index(kernel, l, arrays, idx_ref, i, li)?;
            arrays[l.refs[idx_ref].array][j as usize] as i64 + offset
        }
    };
    let len = kernel.arrays[mr.array].len as i64;
    if idx < 0 || idx >= len {
        return Err(InterpError {
            loop_idx: li,
            iter: i,
            r,
            idx,
        });
    }
    Ok(idx)
}

fn load(
    kernel: &Kernel,
    l: &LoopNest,
    arrays: &[Vec<u64>],
    r: RefId,
    i: u64,
    li: usize,
) -> Result<Val, InterpError> {
    let idx = ref_index(kernel, l, arrays, r, i, li)?;
    let bits = arrays[l.refs[r].array][idx as usize];
    Ok(match kernel.ref_elem(l, r) {
        Elem::I64 => Val::I(bits as i64),
        Elem::F64 => Val::F(f64::from_bits(bits)),
    })
}

fn eval(
    kernel: &Kernel,
    l: &LoopNest,
    arrays: &[Vec<u64>],
    e: &Expr,
    i: u64,
    li: usize,
) -> Result<Val, InterpError> {
    Ok(match e {
        Expr::ConstI(v) => Val::I(*v),
        Expr::ConstF(v) => Val::F(*v),
        Expr::Ivar => Val::I(i as i64),
        Expr::Ref(r) => load(kernel, l, arrays, *r, i, li)?,
        Expr::Add(a, b) => binop(
            eval(kernel, l, arrays, a, i, li)?,
            eval(kernel, l, arrays, b, i, li)?,
            |x, y| x.wrapping_add(y),
            |x, y| x + y,
        ),
        Expr::Sub(a, b) => binop(
            eval(kernel, l, arrays, a, i, li)?,
            eval(kernel, l, arrays, b, i, li)?,
            |x, y| x.wrapping_sub(y),
            |x, y| x - y,
        ),
        Expr::Mul(a, b) => binop(
            eval(kernel, l, arrays, a, i, li)?,
            eval(kernel, l, arrays, b, i, li)?,
            |x, y| x.wrapping_mul(y),
            |x, y| x * y,
        ),
        Expr::CvtIF(a) => match eval(kernel, l, arrays, a, i, li)? {
            Val::I(v) => Val::F(v as f64),
            f => f,
        },
    })
}

fn binop(a: Val, b: Val, fi: impl Fn(i64, i64) -> i64, ff: impl Fn(f64, f64) -> f64) -> Val {
    match (a, b) {
        (Val::I(x), Val::I(y)) => Val::I(fi(x, y)),
        (Val::F(x), Val::F(y)) => Val::F(ff(x, y)),
        // The validator rejects mixed types; this is unreachable on
        // validated kernels.
        (x, _) => x,
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // index math doubles as the expected value
mod tests {
    use super::*;
    use crate::ir::KernelBuilder;

    #[test]
    fn axpy_values() {
        let n = 64;
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let ys: Vec<f64> = (0..n).map(|i| 2.0 * i as f64).collect();
        let mut kb = KernelBuilder::new("axpy");
        let x = kb.array_f64_init("x", &xs);
        let y = kb.array_f64_init("y", &ys);
        kb.begin_loop(n as u64);
        let rx = kb.ref_affine(x, 1, 0);
        let ry = kb.ref_affine(y, 1, 0);
        kb.stmt(
            ry,
            Expr::add(Expr::Ref(ry), Expr::mul(Expr::ConstF(3.0), Expr::Ref(rx))),
        );
        kb.end_loop();
        let k = kb.build().unwrap();
        let out = interpret(&k).unwrap();
        for i in 0..n as usize {
            assert_eq!(f64::from_bits(out[y][i]), 2.0 * i as f64 + 3.0 * i as f64);
        }
    }

    #[test]
    fn loop_carried_chain() {
        // a[i+1] = a[i] + 1 starting from a[0]=5.
        let mut kb = KernelBuilder::new("chain");
        let mut init = vec![0i64; 17];
        init[0] = 5;
        let a = kb.array_i64_init("a", &init);
        kb.begin_loop(16);
        let r0 = kb.ref_affine(a, 1, 0);
        let r1 = kb.ref_affine(a, 1, 1);
        kb.stmt(r1, Expr::add(Expr::Ref(r0), Expr::ConstI(1)));
        kb.end_loop();
        let k = kb.build().unwrap();
        let out = interpret(&k).unwrap();
        for i in 0..17 {
            assert_eq!(out[a][i] as i64, 5 + i as i64);
        }
    }

    #[test]
    fn indirect_scatter() {
        // c[idx[i]] = i over a permutation.
        let idx_vals: Vec<i64> = (0..32).map(|i| (i * 7) % 32).collect();
        let mut kb = KernelBuilder::new("scatter");
        let c = kb.array_i64("c", 32);
        let idx = kb.array_i64_init("idx", &idx_vals);
        kb.begin_loop(32);
        let ridx = kb.ref_affine(idx, 1, 0);
        let rc = kb.ref_indirect(c, ridx, 0);
        kb.stmt(rc, Expr::Ivar);
        kb.end_loop();
        let k = kb.build().unwrap();
        let out = interpret(&k).unwrap();
        for i in 0..32usize {
            let target = (i * 7) % 32;
            assert_eq!(out[c][target], i as u64);
        }
    }

    #[test]
    fn indirect_out_of_bounds_detected() {
        let mut kb = KernelBuilder::new("oob");
        let c = kb.array_i64("c", 4);
        let idx = kb.array_i64_init("idx", &[0, 1, 99, 3]);
        kb.begin_loop(4);
        let ridx = kb.ref_affine(idx, 1, 0);
        let rc = kb.ref_indirect(c, ridx, 0);
        kb.stmt(rc, Expr::ConstI(1));
        kb.end_loop();
        let k = kb.build().unwrap();
        let e = interpret(&k).unwrap_err();
        assert_eq!(e.iter, 2);
        assert_eq!(e.idx, 99);
    }

    #[test]
    fn multiple_loops_run_in_order() {
        let mut kb = KernelBuilder::new("two");
        let a = kb.array_i64("a", 8);
        kb.begin_loop(8);
        let ra = kb.ref_affine(a, 1, 0);
        kb.stmt(ra, Expr::Ivar);
        kb.end_loop();
        kb.begin_loop(8);
        let ra2 = kb.ref_affine(a, 1, 0);
        kb.stmt(ra2, Expr::mul(Expr::Ref(ra2), Expr::ConstI(2)));
        kb.end_loop();
        let k = kb.build().unwrap();
        let out = interpret(&k).unwrap();
        for i in 0..8usize {
            assert_eq!(out[a][i] as i64, 2 * i as i64);
        }
    }

    #[test]
    fn ivar_and_cvt() {
        let mut kb = KernelBuilder::new("cvt");
        let a = kb.array_f64("a", 8);
        kb.begin_loop(8);
        let ra = kb.ref_affine(a, 1, 0);
        kb.stmt(ra, Expr::cvt(Expr::mul(Expr::Ivar, Expr::Ivar)));
        kb.end_loop();
        let k = kb.build().unwrap();
        let out = interpret(&k).unwrap();
        assert_eq!(f64::from_bits(out[a][5]), 25.0);
    }
}
