//! The memory system: per-core L1I/L1D/L2 + TLB + prefetcher + LM + DMAC
//! in front of a **shared L3 + DRAM backside**.
//!
//! This is the component the simulated core talks to. It reproduces the
//! architecture of the paper's Figure 1 and Table 1:
//!
//! * **Demand accesses** to system memory consult the TLB, train the
//!   prefetcher, and walk L1D → L2 → L3 → DRAM with MSHR merging, LRU
//!   fills and write-back cascades. The L1D is write-through (Table 1), so
//!   store hits forward the write to L2.
//! * **Local-memory accesses** bypass the TLB and the whole hierarchy with
//!   a fixed 2-cycle latency.
//! * **DMA transfers** are coherent with the caches: each `dma-get` bus
//!   request snoops the hierarchy for a newer copy, and each `dma-put` bus
//!   request invalidates matching lines (paper §2.1), exactly the
//!   accounting Table 3 includes in its per-level access counts.
//!
//! The L3 and the DRAM channel live in [`SharedBackside`], which one or
//! more per-core [`MemSystem`] tiles share (the paper's §3 multicore
//! integration: everything above the L3 — and the whole LM/directory
//! apparatus — is strictly per core, while the last-level cache and
//! memory channel are chip-wide resources). The backside is **banked**:
//! the shared L3 is a vector of address-interleaved banks, each with its
//! own arbitrated port, in front of one [`DramController`] with
//! per-DRAM-bank row buffers and a posted-write queue. Requests to different L3 banks
//! proceed in parallel; requests to one bank serialize on its port in
//! the rotating round-robin order the machine ticks cores in. The
//! single-port, flat-DRAM model of earlier revisions is preserved bit
//! for bit by `L3Geometry { banks: 1 }` + [`DramConfig::flat_dram`]
//! (`MachineConfig::with_flat_backside`). Single-core systems embed a
//! private one-core backside.
//!
//! ## Inter-core coherence modes
//!
//! How the shared arrays treat the *same* system-memory address on two
//! cores is governed by [`CoherenceMode`]:
//!
//! * [`CoherenceMode::Replicate`] (the default, and the only model of
//!   earlier revisions): every cacheable line is tagged with its core id
//!   in the shared arrays, so cores keep fully private replicas — no
//!   read sharing, no invalidation traffic. Bit-identical to the
//!   pre-directory backside.
//! * [`CoherenceMode::Mesi`]: address ranges registered as cross-core
//!   shared ([`SharedBackside::mark_shared_range`], fed from the kernel
//!   sharder's read-only replicated-whole arrays) drop the core tag.
//!   Each L3 bank owns a **directory slice** tracking, per resident
//!   shared line, the MESI upper-copy state
//!   ([`hsim_coherence::mesi::MesiState`]), a sharer bitset and the
//!   M-owner. Reads are served to multiple cores from one line
//!   (`shared_hits`); a write recalls other sharers' copies with
//!   invalidation messages; a read of another core's Modified line pays
//!   an intervention that writes the owner's data back; evicting a
//!   shared line (capacity or DMA) back-invalidates every upper copy.
//!   Message latencies are charged on the home bank's port, so the
//!   event horizon already covers them. Everything outside the
//!   registered ranges keeps the `Replicate` path.
//!
//! The per-tile hybrid LM protocol never enters this machinery: LM
//! accesses bypass the backside entirely, and DMA bus requests hit the
//! directory exactly like any other bus agent (paper §3: the protocols
//! do not interact).
//!
//! ## Invariants
//!
//! * **Exact stat partitioning** — every counter the backside increments
//!   (L3 bank activity, DRAM lines and row outcomes, bus waits, bank
//!   conflicts, queue stalls, coherence messages) is attributed to
//!   exactly one core's [`BacksideCoreStats`]; summing per-core shares
//!   always reproduces the aggregate `l3_total_stats()` /
//!   `dram_total_stats()` / `coherence_total_stats()`. This includes
//!   writes the directory posts on M-state interventions and dirty
//!   shared-victim evictions: the DRAM write and its eventual drain-time
//!   row outcome are charged to the *owner* whose dirty data is written
//!   back (interventions) or to the evicting requester (clean-path
//!   victims), never double-counted. Tests pin this for every counter.
//! * **Horizon monotonicity** — [`SharedBackside::next_event_after`]
//!   covers *every* backside resource that can free up in the future
//!   (all L3 bank ports, the DRAM channel, every DRAM bank). Backside
//!   state changes only inside access calls made by ticking cores, so
//!   between calls the horizon only moves forward and the event-horizon
//!   scheduler can bulk-advance to it without missing an
//!   arbitration-relevant event.

use crate::backing::{DramConfig, DramController, DramStats, RowOutcome};
use crate::cache::{AccessKind, Cache, CacheConfig, CacheStats, Evicted, WritePolicy};
use crate::dma::{DmaConfig, DmaOp, Dmac};
use crate::fault::{backoff_delay, FaultConfig, FaultRoller, FaultSite};
use crate::lm::{LmConfig, LocalMem};
use crate::mshr::{MshrFile, MshrOutcome};
use crate::prefetch::{PrefetchConfig, StreamPrefetcher};
use crate::tlb::{Tlb, TlbConfig};
use hsim_coherence::protocol::{CoherenceProtocol, DirLine, ProtocolTable};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

/// Sentinel for a stale horizon cache: some mutation happened since the
/// last scan, so the next query must recompute. Cycle 0 can never be a
/// real horizon value — events are strictly after the querying `now`,
/// and `now` is unsigned.
const HORIZON_DIRTY: u64 = 0;
/// Sentinel for a *clean* horizon cache with no pending event: the
/// component is provably idle until the next mutation dirties it again.
const HORIZON_NONE: u64 = u64::MAX;

/// Which component served an access (for AMAT and replay accounting).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Level {
    /// L1 data (or instruction) cache.
    L1,
    /// Unified L2.
    L2,
    /// Unified (shared) L3.
    L3,
    /// Main memory.
    Dram,
    /// Local memory (scratchpad).
    Lm,
    /// Store-to-load forwarding inside the LSQ (set by the core).
    Forward,
    /// Non-cacheable MMIO (DMAC registers).
    Mmio,
}

/// A residency change in the data-cache hierarchy, streamed to the
/// coherence tracker when event collection is enabled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheEvent {
    /// Line-aligned address.
    pub line: u64,
    /// True for a line placement, false for an eviction/invalidation.
    pub fill: bool,
}

/// Result of a data access.
#[derive(Clone, Copy, Debug)]
pub struct AccessResponse {
    /// Total latency in cycles, including any TLB penalty.
    pub latency: u64,
    /// The component that served the access.
    pub served: Level,
    /// TLB miss penalty included in `latency` (0 on TLB hit or LM access).
    pub tlb_penalty: u64,
}

/// Geometry of the banked shared L3: the array is split into
/// address-interleaved banks (consecutive line addresses rotate through
/// them), each with its own arbitrated port of `l3_port_gap` occupancy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct L3Geometry {
    /// Number of banks (power of two, dividing the set count). 1
    /// reproduces the single-ported monolithic L3 of earlier revisions
    /// exactly.
    pub banks: usize,
}

impl Default for L3Geometry {
    fn default() -> Self {
        L3Geometry { banks: 8 }
    }
}

/// Inter-core coherence model of the shared backside (see the module
/// docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoherenceMode {
    /// Per-core address tagging: cores keep private replicas of every
    /// cacheable line (the historical model; bit-identical to the
    /// pre-directory backside).
    Replicate,
    /// Directory slices at the L3 banks stepping the three-state MSI
    /// table (no Exclusive state; dirty recalls re-read memory).
    Msi,
    /// Directory slices stepping the four-state MESI table (PR 4's
    /// protocol, now table-driven; bit-identical to the hand-written
    /// original).
    Mesi,
    /// Directory slices stepping the MOESI table: an Owned state shares
    /// dirty lines cache-to-cache, deferring write-backs to eviction.
    Moesi,
    /// Directory slices stepping the MESIF table: a designated clean
    /// Forwarder answers shared reads.
    Mesif,
}

impl CoherenceMode {
    /// Every mode, in the order benches and CI sweep them.
    pub const ALL: [CoherenceMode; 5] = [
        CoherenceMode::Replicate,
        CoherenceMode::Msi,
        CoherenceMode::Mesi,
        CoherenceMode::Moesi,
        CoherenceMode::Mesif,
    ];

    /// The directory-backed modes (everything but `Replicate`) — the
    /// protocol axis equivalence suites and sweeps iterate.
    pub const DIRECTORY: [CoherenceMode; 4] = [
        CoherenceMode::Msi,
        CoherenceMode::Mesi,
        CoherenceMode::Moesi,
        CoherenceMode::Mesif,
    ];

    /// Reads the mode from the `HSIM_COHERENCE` environment variable
    /// (`msi`, `mesi`, `moesi` or `mesif` select the corresponding
    /// directory protocol; anything else, or the variable being unset,
    /// selects [`CoherenceMode::Replicate`]). This is the CI matrix
    /// knob: the same test and bench-smoke suite runs once per mode.
    /// Tests that pin recorded cycle counts set the mode explicitly
    /// instead of inheriting it from here.
    pub fn from_env() -> Self {
        match std::env::var("HSIM_COHERENCE").as_deref() {
            Ok(v) if v.eq_ignore_ascii_case("msi") => CoherenceMode::Msi,
            Ok(v) if v.eq_ignore_ascii_case("mesi") => CoherenceMode::Mesi,
            Ok(v) if v.eq_ignore_ascii_case("moesi") => CoherenceMode::Moesi,
            Ok(v) if v.eq_ignore_ascii_case("mesif") => CoherenceMode::Mesif,
            _ => CoherenceMode::Replicate,
        }
    }

    /// Whether this mode runs directory slices at the L3 banks (every
    /// mode but `Replicate`).
    pub fn is_directory(self) -> bool {
        self.protocol().is_some()
    }

    /// The protocol table family member this mode steps (`None` under
    /// `Replicate`).
    pub fn protocol(self) -> Option<CoherenceProtocol> {
        match self {
            CoherenceMode::Replicate => None,
            CoherenceMode::Msi => Some(CoherenceProtocol::Msi),
            CoherenceMode::Mesi => Some(CoherenceProtocol::Mesi),
            CoherenceMode::Moesi => Some(CoherenceProtocol::Moesi),
            CoherenceMode::Mesif => Some(CoherenceProtocol::Mesif),
        }
    }

    /// The lower-case knob / report name.
    pub fn name(self) -> &'static str {
        match self {
            CoherenceMode::Replicate => "replicate",
            CoherenceMode::Msi => "msi",
            CoherenceMode::Mesi => "mesi",
            CoherenceMode::Moesi => "moesi",
            CoherenceMode::Mesif => "mesif",
        }
    }
}

/// Coherence-mode configuration: the model plus the message timings the
/// directory charges on the home bank's port.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoherenceConfig {
    /// The inter-core model.
    pub mode: CoherenceMode,
    /// Cycles an M-state intervention adds to the requesting access
    /// (recalling the owner's dirty line: probe + transfer).
    pub intervention_latency: u64,
    /// Cycles an invalidation round adds to a writing access that must
    /// recall other sharers' copies (the messages travel in parallel;
    /// one round covers all sharers).
    pub inval_latency: u64,
    /// Cycles a back-invalidation costs the *receiving* tile per dirty
    /// L1/L2 line it recalls: the recalled line's transfer occupies the
    /// tile's cache port, so recall storms couple into the victim
    /// core's timing instead of only dropping its copies for free.
    /// Charged at the memory operation that drains the recall queue.
    pub dirty_recall_latency: u64,
}

impl Default for CoherenceConfig {
    fn default() -> Self {
        CoherenceConfig {
            mode: CoherenceMode::Replicate,
            // An intervention is an L2-probe round trip into another
            // tile plus the line transfer: on the order of an L2 visit
            // both ways.
            intervention_latency: 30,
            // An invalidation round is a one-way multicast plus the
            // combined acknowledgement.
            inval_latency: 12,
            // Recalling a dirty upper line reads it out of the L2 — one
            // L2 visit's worth of port occupancy on the victim tile.
            dirty_recall_latency: 15,
        }
    }
}

impl CoherenceConfig {
    /// The default timings with the mode taken from `HSIM_COHERENCE`
    /// (see [`CoherenceMode::from_env`]).
    pub fn from_env() -> Self {
        CoherenceConfig {
            mode: CoherenceMode::from_env(),
            ..Default::default()
        }
    }
}

/// Per-core inter-core coherence activity (all zero under
/// [`CoherenceMode::Replicate`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoherenceStats {
    /// L3 hits this core scored on a shared line brought in or also held
    /// by another core — the replication traffic the directory saved.
    pub shared_hits: u64,
    /// Invalidation messages this core's writes (and the evictions and
    /// DMA puts it caused) sent to other cores' upper levels.
    pub invalidations_sent: u64,
    /// M-state interventions this core's requests triggered (another
    /// core's dirty line was recalled to serve them).
    pub interventions: u64,
    /// Invalidation messages applied to this core's own L1/L2 (the
    /// receive side of `invalidations_sent`).
    pub upper_invals_applied: u64,
    /// Recalled upper lines that were *dirty* in this core's L1/L2 —
    /// each one charged [`CoherenceConfig::dirty_recall_latency`]
    /// cycles of tile-side port occupancy to the memory operation that
    /// drained the recall.
    pub dirty_recalls: u64,
    /// Directory/bank message NACKs injected by the fault plan on this
    /// core's contended port arbitrations, each recovered by a bounded
    /// backoff re-arbitration (counted in both coherence modes — the
    /// bank port is the message fabric either way).
    pub dir_nacks: u64,
}

impl CoherenceStats {
    /// Merges another stats block into this one.
    pub fn merge(&mut self, other: &CoherenceStats) {
        self.shared_hits += other.shared_hits;
        self.invalidations_sent += other.invalidations_sent;
        self.interventions += other.interventions;
        self.upper_invals_applied += other.upper_invals_applied;
        self.dirty_recalls += other.dirty_recalls;
        self.dir_nacks += other.dir_nacks;
    }
}

/// Full memory-system configuration.
#[derive(Clone, Debug)]
pub struct MemConfig {
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified L2.
    pub l2: CacheConfig,
    /// Unified L3 (shared across cores in a multi-core machine).
    pub l3: CacheConfig,
    /// Banking of the shared L3.
    pub l3_geometry: L3Geometry,
    /// Number of L1D MSHR entries.
    pub mshr_entries: usize,
    /// Prefetcher configuration.
    pub prefetch: PrefetchConfig,
    /// TLB configuration.
    pub tlb: TlbConfig,
    /// DRAM configuration.
    pub dram: DramConfig,
    /// Number of independent DRAM channels behind the L3. Lines are
    /// interleaved across channels by the line-address bits directly
    /// above the L3 bank-select bits, so consecutive lines stripe over
    /// banks first and channels second. Must be a power of two; 1 (the
    /// default) reproduces the single-channel backside bit for bit.
    pub dram_channels: usize,
    /// Occupancy of the shared L3 port per request, in cycles. 0 models
    /// an ideally-ported L3 (the single-core configuration); multi-core
    /// machines raise it to model backside bus contention.
    pub l3_port_gap: u64,
    /// Local memory (absent in the cache-based system).
    pub lm: Option<LmConfig>,
    /// DMA controller configuration.
    pub dma: DmaConfig,
    /// Inter-core coherence model of the shared backside.
    pub coherence: CoherenceConfig,
    /// Deterministic fault-injection plan threaded to every site of the
    /// fabric (DRAM reads, the DMA engine, the bank ports). The default
    /// [`FaultConfig::none`] is bit-identical to a fault-free machine.
    pub fault: FaultConfig,
}

impl MemConfig {
    /// The hybrid memory system of Table 1: 32 KB L1D + 32 KB LM.
    ///
    /// One deviation from Table 1 is documented in DESIGN.md: the paper's
    /// 24-way 256 KB L2 implies a non-power-of-two set count, so we model
    /// a 16-way L2 of the same capacity.
    pub fn hybrid() -> Self {
        MemConfig {
            l1i: CacheConfig {
                name: "L1I",
                size_bytes: 32 * 1024,
                ways: 8,
                line_bytes: 64,
                latency: 2,
                write_policy: WritePolicy::WriteThrough,
            },
            l1d: CacheConfig {
                name: "L1D",
                size_bytes: 32 * 1024,
                ways: 8,
                line_bytes: 64,
                latency: 2,
                write_policy: WritePolicy::WriteThrough,
            },
            l2: CacheConfig {
                name: "L2",
                size_bytes: 256 * 1024,
                ways: 16,
                line_bytes: 64,
                latency: 15,
                write_policy: WritePolicy::WriteBack,
            },
            l3: CacheConfig {
                name: "L3",
                size_bytes: 4 * 1024 * 1024,
                ways: 32,
                line_bytes: 64,
                latency: 40,
                write_policy: WritePolicy::WriteBack,
            },
            l3_geometry: L3Geometry::default(),
            mshr_entries: 48,
            prefetch: PrefetchConfig::default(),
            tlb: TlbConfig::default(),
            dram: DramConfig::default(),
            dram_channels: 1,
            l3_port_gap: 0,
            lm: Some(LmConfig::default()),
            dma: DmaConfig::default(),
            coherence: CoherenceConfig::from_env(),
            fault: FaultConfig::none(),
        }
    }

    /// The cache-based comparison system of §4.3: no LM, and for fairness
    /// the L1D capacity is doubled to 64 KB (32 KB L1 + 32 KB LM in the
    /// hybrid system).
    pub fn cache_based() -> Self {
        let mut cfg = Self::hybrid();
        cfg.l1d.size_bytes = 64 * 1024;
        cfg.lm = None;
        cfg
    }

    /// Whether every cache level of this configuration uses the L3's
    /// line size. The shared backside (and its directory slices) track
    /// residency at L3-line granularity; a tile whose L1/L2 lines were
    /// coarser or finer would fill and evict at mismatched alignments
    /// and leave stale directory state behind.
    pub fn line_sizes_uniform(&self) -> bool {
        let line = self.l3.line_bytes;
        self.l1i.line_bytes == line && self.l1d.line_bytes == line && self.l2.line_bytes == line
    }

    /// Whether two per-tile configurations agree on everything the
    /// *shared* backside is built from: the L3 array and its banking,
    /// the DRAM controller, the L3 port occupancy, the inter-core
    /// coherence model and the fault plan (whose DRAM and NACK sites
    /// live in the shared slice) — and both keep a uniform line size through
    /// their own hierarchy ([`MemConfig::line_sizes_uniform`]), since
    /// the backside tracks residency at L3-line granularity. Tiles of
    /// one heterogeneous machine may differ in anything else above the
    /// L3 (core width, L1/L2 capacity and associativity, LM size or
    /// absence, prefetcher, MSHRs, TLB, DMA engine) — there is only
    /// one L3 and one memory channel per chip.
    pub fn backside_compatible(&self, other: &MemConfig) -> bool {
        self.line_sizes_uniform()
            && other.line_sizes_uniform()
            && self.l3 == other.l3
            && self.l3_geometry == other.l3_geometry
            && self.dram == other.dram
            && self.dram_channels == other.dram_channels
            && self.l3_port_gap == other.l3_port_gap
            && self.coherence == other.coherence
            && self.fault == other.fault
    }
}

/// Per-core share of the shared backside's activity: what this core's
/// requests did to the L3, the DRAM channel and the arbitrated bus.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BacksideCoreStats {
    /// This core's L3 activity (same accounting as a private L3 would
    /// report; summing over cores reproduces the shared array's totals).
    pub l3: CacheStats,
    /// DRAM lines moved on behalf of this core.
    pub dram: DramStats,
    /// Arbitrated backside requests issued by this core.
    pub bus_requests: u64,
    /// Cycles this core's requests spent waiting for their L3 bank port
    /// (0 whenever the machine is uncontended or `l3_port_gap` is 0).
    pub bus_wait_cycles: u64,
    /// Requests that found their L3 bank's port busy — the bank-level
    /// contention signal (a strict subset of `bus_requests`, and 0 when
    /// `l3_port_gap` is 0).
    pub bank_conflicts: u64,
    /// Inter-core coherence activity (all zero under
    /// [`CoherenceMode::Replicate`]).
    pub coh: CoherenceStats,
}

/// Core-id tag position inside backside line addresses. SM addresses are
/// below the LM window (`< 2^46`), so tagging keeps per-core private
/// lines distinct in the shared arrays — the address-space separation a
/// real machine gets from physical allocation.
const CORE_TAG_SHIFT: u32 = 48;

/// The pseudo-core id tagging cross-core **shared** lines in the shared
/// arrays under the directory modes. Real core ids are small, so the
/// tag can never collide with a private line's.
const SHARED_CORE: usize = (1 << 16) - 1;

/// The per-bank slice of the inter-core directory: one
/// [`DirLine`] record per resident shared line of this bank (entry
/// existence tracks L3 residency; capacity therefore never exceeds the
/// bank's line count). Empty and untouched under
/// [`CoherenceMode::Replicate`]. The records are stepped generically
/// through whichever [`ProtocolTable`] the backside's
/// [`CoherenceMode`] selects.
#[derive(Default)]
struct DirectorySlice {
    /// Bank-local line address → record.
    entries: HashMap<u64, DirLine>,
}

/// One bank of the shared L3: its slice of the array, its own arbitrated
/// port, and its slice of the inter-core directory.
struct L3Bank {
    cache: Cache,
    /// When this bank's port frees up (`l3_port_gap` occupancy per
    /// request; never advances when the gap is 0). Coherence messages
    /// the directory sends occupy the port too, so the event horizon
    /// covers them through this field.
    busy_until: u64,
    /// This bank's directory slice (shared lines homed here).
    dir: DirectorySlice,
}

/// The chip-wide memory backside: a banked shared L3 in front of one
/// DRAM channel with row-buffer state, arbitrated among `n` per-core
/// [`MemSystem`] tiles.
///
/// All per-core tiles of one machine hold an `Rc<RefCell<...>>` to the
/// same backside; the lock-step multi-core driver ticks cores in a
/// rotating (round-robin) order, so same-cycle requests to one bank's
/// port resolve round-robin-fairly while requests to different banks
/// proceed in parallel. Every method takes the requesting core's id and
/// attributes activity to its [`BacksideCoreStats`] (see the module
/// docs for the exact-partitioning invariant).
pub struct SharedBackside {
    /// Address-interleaved L3 banks.
    banks: Vec<L3Bank>,
    /// Line-interleaved DRAM channels (length is a power of two; 1
    /// reproduces the single-channel backside bit for bit).
    channels: Vec<DramController>,
    l3_port_gap: u64,
    l3_latency: u64,
    /// Line-offset bits (`log2(line_bytes)`).
    line_shift: u32,
    /// Bank-index bits (`log2(banks)`), taken from the line number's
    /// low end so consecutive lines rotate through the banks.
    bank_bits: u32,
    /// Cached [`SharedBackside::next_event_after`] result:
    /// `HORIZON_DIRTY` after any mutation, `HORIZON_NONE` when the
    /// backside is provably idle, otherwise the next event cycle.
    horizon_cache: Cell<u64>,
    per_core: Vec<BacksideCoreStats>,
    /// Per-core residency-event queues (coherence tracking); `None`
    /// entries collect nothing.
    events: Vec<Option<Vec<CacheEvent>>>,
    /// Inter-core coherence model and message timings.
    coherence: CoherenceConfig,
    /// The guarded-action rule table the directory slices step (the
    /// Mesi table under `Replicate` too, where it is never consulted —
    /// the directory stays empty).
    table: ProtocolTable,
    /// Byte ranges registered as cross-core shared (`[start, end)`);
    /// consulted only under the directory modes.
    shared_ranges: Vec<(u64, u64)>,
    /// Per-core queues of back-invalidation messages (global line
    /// addresses) the directory sent; each tile drains its queue into
    /// its L1/L2 at its next memory operation.
    pending_upper_inval: Vec<Vec<u64>>,
    /// Deterministic directory/bank-NACK roller. Owned by the backside
    /// (not the tiles): port arbitrations happen in deterministic
    /// simulated order, so the draw sequence is independent of host
    /// scheduling.
    nack_faults: FaultRoller,
    /// Retry budget per NACKed arbitration — the livelock watchdog.
    fault_max_retries: u32,
    /// Base backoff delay between NACK re-arbitrations.
    fault_backoff_base: u64,
}

impl SharedBackside {
    /// Builds a backside for `n_cores` tiles from the shared slice of a
    /// memory configuration.
    pub fn new(cfg: &MemConfig, n_cores: usize) -> Self {
        assert!(n_cores >= 1, "backside needs at least one core");
        let n_banks = cfg.l3_geometry.banks;
        assert!(
            n_banks.is_power_of_two(),
            "L3 bank count must be a power of two"
        );
        assert!(
            n_banks <= cfg.l3.num_sets(),
            "more L3 banks than sets ({n_banks} banks, {} sets)",
            cfg.l3.num_sets()
        );
        let bank_cfg = CacheConfig {
            size_bytes: cfg.l3.size_bytes / n_banks as u64,
            ..cfg.l3.clone()
        };
        assert!(
            n_cores < SHARED_CORE,
            "core count collides with the shared-line tag"
        );
        assert!(
            cfg.dram_channels.is_power_of_two(),
            "DRAM channel count must be a power of two"
        );
        SharedBackside {
            banks: (0..n_banks)
                .map(|_| L3Bank {
                    cache: Cache::new(bank_cfg.clone()),
                    busy_until: 0,
                    dir: DirectorySlice::default(),
                })
                .collect(),
            channels: (0..cfg.dram_channels)
                .map(|ch| DramController::with_faults(cfg.dram.clone(), &cfg.fault, ch as u64))
                .collect(),
            l3_port_gap: cfg.l3_port_gap,
            l3_latency: cfg.l3.latency,
            line_shift: cfg.l3.line_bytes.trailing_zeros(),
            bank_bits: n_banks.trailing_zeros(),
            horizon_cache: Cell::new(HORIZON_DIRTY),
            per_core: vec![BacksideCoreStats::default(); n_cores],
            events: (0..n_cores).map(|_| None).collect(),
            coherence: cfg.coherence.clone(),
            table: ProtocolTable::new(
                cfg.coherence
                    .mode
                    .protocol()
                    .unwrap_or(CoherenceProtocol::Mesi),
            ),
            shared_ranges: Vec::new(),
            pending_upper_inval: (0..n_cores).map(|_| Vec::new()).collect(),
            nack_faults: FaultRoller::new(&cfg.fault, FaultSite::DirNack, 0),
            fault_max_retries: cfg.fault.max_retries,
            fault_backoff_base: cfg.fault.backoff_base,
        }
    }

    /// Number of cores sharing this backside.
    pub fn n_cores(&self) -> usize {
        self.per_core.len()
    }

    /// Number of L3 banks.
    pub fn n_banks(&self) -> usize {
        self.banks.len()
    }

    /// This core's share of the backside activity.
    pub fn core_stats(&self, core: usize) -> BacksideCoreStats {
        self.per_core[core]
    }

    /// Aggregate L3 statistics summed over all banks. The per-core
    /// shares in [`BacksideCoreStats`] partition this exactly.
    pub fn l3_total_stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for b in &self.banks {
            total.merge(&b.cache.stats);
        }
        total
    }

    /// Aggregate DRAM statistics summed over all channels (all cores).
    pub fn dram_total_stats(&self) -> DramStats {
        let mut total = DramStats::default();
        for ch in &self.channels {
            total.merge(&ch.stats);
        }
        total
    }

    /// Number of DRAM channels.
    pub fn n_channels(&self) -> usize {
        self.channels.len()
    }

    /// Which DRAM channel serves `line_addr`: the line-number bits
    /// directly above the bank-select bits, so lines stripe over L3
    /// banks first and channels second. Core tags (bit 48 and up under
    /// [`CoherenceMode::Replicate`]) never reach these bits.
    #[inline]
    fn channel_of(&self, line_addr: u64) -> usize {
        (((line_addr >> self.line_shift) >> self.bank_bits) & (self.channels.len() as u64 - 1))
            as usize
    }

    /// Marks every cached horizon stale. Called at the top of each
    /// public `&mut self` method: any mutation may create or consume a
    /// future backside event.
    #[inline]
    fn touch(&mut self) {
        self.horizon_cache.set(HORIZON_DIRTY);
    }

    /// Aggregate inter-core coherence statistics summed over the
    /// per-core shares (which partition them exactly, like every other
    /// backside counter).
    pub fn coherence_total_stats(&self) -> CoherenceStats {
        let mut total = CoherenceStats::default();
        for s in &self.per_core {
            total.merge(&s.coh);
        }
        total
    }

    /// The inter-core coherence model this backside runs.
    pub fn coherence_mode(&self) -> CoherenceMode {
        self.coherence.mode
    }

    /// Registers `[start, start + bytes)` as cross-core shared data:
    /// under the directory modes its lines drop the per-core tag and
    /// are tracked by the per-bank directory slices. Under
    /// [`CoherenceMode::Replicate`] the registration is recorded but
    /// never consulted. Duplicate registrations (every tile registers
    /// the same shard layout) are idempotent.
    pub fn mark_shared_range(&mut self, start: u64, bytes: u64) {
        self.touch();
        if bytes == 0 || self.shared_ranges.contains(&(start, start + bytes)) {
            return;
        }
        self.shared_ranges.push((start, start + bytes));
    }

    /// Whether `line_addr` belongs to a registered shared range under
    /// a directory mode (always `false` under `Replicate`).
    #[inline]
    fn is_shared_line(&self, line_addr: u64) -> bool {
        self.coherence.mode.is_directory()
            && self
                .shared_ranges
                .iter()
                .any(|&(s, e)| line_addr >= s && line_addr < e)
    }

    /// Drains the back-invalidation messages addressed to `core`'s upper
    /// levels, counting their application. Always empty under
    /// `Replicate`.
    pub fn take_upper_invals(&mut self, core: usize) -> Vec<u64> {
        self.touch();
        let lines = std::mem::take(&mut self.pending_upper_inval[core]);
        self.per_core[core].coh.upper_invals_applied += lines.len() as u64;
        lines
    }

    /// Whether any back-invalidation is pending for `core` (lets tiles
    /// skip the drain borrow on the hot path).
    pub fn has_upper_invals(&self, core: usize) -> bool {
        !self.pending_upper_inval[core].is_empty()
    }

    /// Records that `n` of the back-invalidations `core` just applied
    /// recalled *dirty* L1/L2 lines (the tile charges itself
    /// `dirty_recall_latency` port-occupancy cycles per line; the count
    /// lands in the victim core's coherence share).
    pub fn note_dirty_recalls(&mut self, core: usize, n: u64) {
        self.touch();
        self.per_core[core].coh.dirty_recalls += n;
    }

    /// The per-dirty-line recall occupancy tiles charge themselves when
    /// a back-invalidation drops a dirty L1/L2 copy.
    pub fn dirty_recall_latency(&self) -> u64 {
        self.coherence.dirty_recall_latency
    }

    /// Sends one back-invalidation for the global line `line` to every
    /// core in the `sharers` bitset (the caller excludes any core that
    /// keeps its copy), charging the messages to `from` and raising
    /// eviction residency events for the recipients.
    fn recall_sharers(&mut self, sharers: u64, from: usize, line: u64) {
        let mut rest = sharers;
        while rest != 0 {
            let s = rest.trailing_zeros() as usize;
            rest &= rest - 1;
            self.pending_upper_inval[s].push(line);
            self.per_core[from].coh.invalidations_sent += 1;
            self.push_event(s, line, false);
        }
    }

    /// Occupies `bank`'s port for `cycles` starting no earlier than
    /// `start` — the channel cost of coherence messages the directory
    /// sends. Ideally-ported configurations (`l3_port_gap == 0`) have an
    /// ideal coherence channel too, mirroring the request-port model.
    fn occupy_bank(&mut self, bank: usize, start: u64, cycles: u64) {
        if self.l3_port_gap == 0 || cycles == 0 {
            return;
        }
        let b = &mut self.banks[bank];
        b.busy_until = b.busy_until.max(start) + cycles;
    }

    /// The bank serving `line_addr` (low line-number bits).
    #[inline]
    fn bank_of(&self, line_addr: u64) -> usize {
        ((line_addr >> self.line_shift) & (self.banks.len() as u64 - 1)) as usize
    }

    /// Strips the bank bits out of a line address, yielding the
    /// bank-local address looked up in that bank's array (so each bank
    /// uses all of its sets).
    #[inline]
    fn local_addr(&self, line_addr: u64) -> u64 {
        (line_addr >> self.line_shift >> self.bank_bits) << self.line_shift
    }

    /// Inverse of [`Self::local_addr`]: reconstructs the original line
    /// address of a bank-local one.
    #[inline]
    fn global_addr(&self, local: u64, bank: usize) -> u64 {
        (((local >> self.line_shift) << self.bank_bits) | bank as u64) << self.line_shift
    }

    #[inline]
    fn tag(core: usize, line: u64) -> u64 {
        debug_assert!(line < 1 << CORE_TAG_SHIFT, "address overflows the core tag");
        line | (core as u64) << CORE_TAG_SHIFT
    }

    #[inline]
    fn untag(tagged: u64) -> (usize, u64) {
        (
            (tagged >> CORE_TAG_SHIFT) as usize,
            tagged & ((1 << CORE_TAG_SHIFT) - 1),
        )
    }

    fn push_event(&mut self, core: usize, line: u64, fill: bool) {
        if let Some(q) = &mut self.events[core] {
            q.push(CacheEvent { line, fill });
        }
    }

    /// Mirrors one row outcome into a per-core DRAM stat share.
    fn bump_row(d: &mut DramStats, outcome: RowOutcome) {
        match outcome {
            RowOutcome::Hit => d.row_hits += 1,
            RowOutcome::Miss => d.row_misses += 1,
            RowOutcome::Conflict => d.row_conflicts += 1,
        }
    }

    /// Posts one line write to the DRAM controller and mirrors the
    /// channel totals into per-core shares: the write itself is charged
    /// to `core` (whoever the backside attributes the post to — the
    /// requester, or the recalled owner for an M-intervention
    /// write-back, flagged by `intervention`), and the row outcome of a
    /// drained write belongs to the core that originally posted it. A
    /// queue-full stall is charged to `core` — unless the *drained*
    /// victim was an M-intervention write-back, in which case the drain
    /// serviced the recalled owner's dirty data and both the stall and
    /// the `intervention_drain_stalls` split land on that owner instead
    /// of the innocent poster (directory-aware DRAM attribution).
    fn post_dram_write(&mut self, now: u64, tagged_line: u64, core: usize, intervention: bool) {
        self.per_core[core].dram.writes += 1;
        let ch = self.channel_of(tagged_line);
        if let Some((owner, outcome, victim_iv)) =
            self.channels[ch].write_posted(now, tagged_line, core, intervention)
        {
            let stall_core = if victim_iv { owner } else { core };
            self.per_core[stall_core].dram.queue_stalls += 1;
            if victim_iv {
                self.per_core[owner].dram.intervention_drain_stalls += 1;
            }
            Self::bump_row(&mut self.per_core[owner].dram, outcome);
        }
    }

    /// Handles an L3 bank's evicted line.
    ///
    /// Private (core-tagged) victims: a residency event goes to the
    /// victim's owner; dirty victims post to DRAM, charged to the
    /// requesting core whose fill caused the eviction (matching the
    /// pre-banking attribution).
    ///
    /// Shared victims (directory modes): the directory entry is
    /// retired and every upper copy recalled (back-invalidation messages
    /// charged to the evicting requester — the sharer-eviction race the
    /// protocol must close). The write-back of a dirty-state victim is
    /// charged to its *owner*, whose dirty data it is; a merely
    /// L3-dirty victim is charged to the requester like a private one.
    fn victim(&mut self, bank: usize, ev: Evicted, now: u64, core: usize) {
        let (owner, local) = Self::untag(ev.addr);
        let global = self.global_addr(local, bank);
        if owner == SHARED_CORE {
            let entry = self.banks[bank].dir.entries.remove(&local);
            let mut e = entry.unwrap_or(DirLine::empty());
            // Evicting the home copy: the table's Evict row decides
            // what the recall owes (a dirty state additionally writes
            // the owner's data back).
            let ob = e.evict(&self.table);
            self.recall_sharers(ob.invalidate, core, global);
            if ob.invalidate != 0 {
                self.occupy_bank(bank, now, self.coherence.inval_latency);
            }
            if ob.writeback {
                // The L3 copy is stale against the owner's: recall and
                // write back the owner's data, charged to the owner. The
                // bank array only counted a write-back if its own copy
                // was dirty; mirror the recall into the aggregate so the
                // per-core shares keep partitioning it exactly.
                self.post_dram_write(now, Self::tag(SHARED_CORE, global), ob.old_owner, true);
                self.per_core[ob.old_owner].l3.writebacks_out += 1;
                if !ev.dirty {
                    self.banks[bank].cache.stats.writebacks_out += 1;
                }
            } else if ev.dirty {
                self.post_dram_write(now, Self::tag(SHARED_CORE, global), core, false);
                self.per_core[core].l3.writebacks_out += 1;
            }
            return;
        }
        self.push_event(owner, global, false);
        if ev.dirty {
            self.post_dram_write(now, Self::tag(owner, global), core, false);
            self.per_core[core].l3.writebacks_out += 1;
        }
    }

    /// Enables residency-event collection for one core.
    pub fn enable_events(&mut self, core: usize) {
        self.touch();
        self.events[core] = Some(Vec::new());
    }

    /// Drains the events queued for one core.
    pub fn take_events(&mut self, core: usize) -> Vec<CacheEvent> {
        self.touch();
        match &mut self.events[core] {
            Some(q) => std::mem::take(q),
            None => Vec::new(),
        }
    }

    /// Arbitrates one L3 bank's port: the request starts once the port
    /// is free, and the wait (plus a bank-conflict count when it was
    /// non-zero) is charged to the requesting core.
    ///
    /// Fault site: a *contended* arbitration (the port was busy — there
    /// is a message to lose) may be NACKed by the fault plan. Each NACK
    /// re-arbitrates after an exponential backoff, charged to the
    /// requester as port wait and counted in
    /// [`CoherenceStats::dir_nacks`]; the retry budget is the livelock
    /// watchdog — past it the request is served unconditionally, so
    /// even rate 1.0 makes forward progress.
    fn arbitrate(&mut self, core: usize, now: u64, bank: usize) -> u64 {
        self.per_core[core].bus_requests += 1;
        if self.l3_port_gap == 0 {
            return now; // ideally-ported banks: no occupancy, no waits
        }
        let mut start = now.max(self.banks[bank].busy_until);
        let contended = start > now;
        let mut nacks = 0u32;
        if contended {
            while nacks < self.fault_max_retries && self.nack_faults.roll() {
                start += backoff_delay(self.fault_backoff_base, nacks);
                nacks += 1;
            }
        }
        self.banks[bank].busy_until = start + self.l3_port_gap;
        let s = &mut self.per_core[core];
        if contended {
            s.bank_conflicts += 1;
        }
        s.coh.dir_nacks += nacks as u64;
        s.bus_wait_cycles += start - now;
        start
    }

    /// An L3 bank lookup (and, on miss, the DRAM walk) for `line_addr`
    /// on behalf of `core`. `now` is the cycle the request reaches the
    /// L3 (after the L2 latency). Returns the latency beyond the L2, the
    /// serving level, and whether the access paid an M-state
    /// intervention (always `false` under [`CoherenceMode::Replicate`];
    /// the tile flags the MSHR entry with it so merge stalls can be
    /// attributed to cross-core sharing).
    pub fn access(
        &mut self,
        core: usize,
        now: u64,
        line_addr: u64,
        kind: AccessKind,
    ) -> (u64, Level, bool) {
        self.touch();
        let shared = self.is_shared_line(line_addr);
        let tag_core = if shared { SHARED_CORE } else { core };
        let bank = self.bank_of(line_addr);
        let local = self.local_addr(line_addr);
        let a = Self::tag(tag_core, local);
        let start = self.arbitrate(core, now, bank);
        let wait = start - now;
        let l3_latency = self.l3_latency;
        let hit = self.banks[bank].cache.access(a, kind);
        {
            let s = &mut self.per_core[core].l3;
            match (kind, hit) {
                (AccessKind::Read, true) => s.read_hits += 1,
                (AccessKind::Read, false) => s.read_misses += 1,
                (AccessKind::Write, true) => s.write_hits += 1,
                (AccessKind::Write, false) => s.write_misses += 1,
                (AccessKind::Prefetch, true) => s.prefetch_hits += 1,
                (AccessKind::Prefetch, false) => {}
            }
        }
        if hit {
            let (coh_extra, intervention) = if shared {
                self.dir_on_hit(bank, core, line_addr, kind, start + l3_latency)
            } else {
                (0, false)
            };
            return (wait + l3_latency + coh_extra, Level::L3, intervention);
        }
        // The DRAM row mapping sees the tagged full line address: in
        // `Replicate` mode distinct cores' private lines are distinct
        // physical lines, so they occupy distinct rows (and interfere in
        // the row buffers); a shared line is one physical line for every
        // core.
        let tagged = Self::tag(tag_core, line_addr);
        let ch = self.channel_of(tagged);
        let (dram_latency, outcome, ecc_retries) =
            self.channels[ch].read(start + l3_latency, tagged);
        {
            let s = &mut self.per_core[core].dram;
            s.reads += 1;
            s.ecc_retries += ecc_retries;
            if let Some(o) = outcome {
                Self::bump_row(s, o);
            }
        }
        let prefetched = kind == AccessKind::Prefetch;
        if let Some(ev) = self.banks[bank].cache.fill(a, false, prefetched) {
            self.victim(bank, ev, start, core);
        }
        {
            let s = &mut self.per_core[core].l3;
            s.fills += 1;
            if prefetched {
                s.prefetch_fills += 1;
            }
        }
        if shared {
            // A freshly resident shared line: the requester is its sole
            // upper holder, in whatever state the table's Invalid row
            // fills to (Exclusive on reads for MESI-family tables,
            // Shared for MSI, Modified on a write-allocate RFO).
            self.banks[bank].dir.entries.insert(
                local,
                DirLine::fill(&self.table, core, kind == AccessKind::Write),
            );
        }
        self.push_event(core, line_addr, true);
        (wait + l3_latency + dram_latency, Level::Dram, false)
    }

    /// The directory transition for an L3 hit on a shared line: the
    /// home slice steps the protocol table through the [`DirLine`]
    /// bookkeeping and discharges the obligations the transition names —
    /// read sharing, invalidation rounds on writes, dirty-copy recalls
    /// (write-back or MOESI cache-to-cache), and MSI's memory re-read.
    /// Returns the message latency charged to the requesting access and
    /// whether an intervention happened. `msg_start` is the cycle the
    /// messages leave the home slice (after the L3 lookup).
    fn dir_on_hit(
        &mut self,
        bank: usize,
        core: usize,
        line_addr: u64,
        kind: AccessKind,
        msg_start: u64,
    ) -> (u64, bool) {
        let local = self.local_addr(line_addr);
        let iv_lat = self.coherence.intervention_latency;
        let inv_lat = self.coherence.inval_latency;
        let mut e = *self.banks[bank]
            .dir
            .entries
            .get(&local)
            .expect("resident shared line must have a directory entry");
        // The table decides the successor state and the protocol work
        // owed; the line record carries what the state enum cannot —
        // the sharer bitset and the owner.
        let ob = e.access(&self.table, core, kind == AccessKind::Write);
        let mut extra = 0u64;
        if ob.intervention {
            // Another core's dirty copy serves this request: a recall
            // round trip either way, plus the DRAM write-back unless the
            // table shares the dirty data cache-to-cache (MOESI).
            extra += iv_lat;
            self.per_core[core].coh.interventions += 1;
            if ob.writeback {
                self.post_dram_write(
                    msg_start,
                    Self::tag(SHARED_CORE, line_addr),
                    ob.old_owner,
                    true,
                );
            }
            self.occupy_bank(bank, msg_start, iv_lat);
        }
        if ob.shared_hit {
            self.per_core[core].coh.shared_hits += 1;
        }
        if ob.invalidate != 0 {
            // One invalidation round covers every recalled sharer.
            extra += inv_lat;
            self.recall_sharers(ob.invalidate, core, line_addr);
            self.occupy_bank(bank, msg_start, inv_lat);
        }
        if ob.memory_read {
            // MSI: sharers cannot forward, so the just-written-back
            // line is re-fetched from memory to serve the request
            // (timed, charged to the requester).
            let tagged = Self::tag(SHARED_CORE, line_addr);
            let ch = self.channel_of(tagged);
            let (lat, outcome, ecc) = self.channels[ch].read(msg_start, tagged);
            let s = &mut self.per_core[core].dram;
            s.reads += 1;
            s.ecc_retries += ecc;
            if let Some(o) = outcome {
                Self::bump_row(s, o);
            }
            extra += lat;
        }
        self.banks[bank].dir.entries.insert(local, e);
        (extra, ob.intervention)
    }

    /// Accepts a dirty line written back by a core's L2 (eviction
    /// cascade); dirty L3 victims continue to DRAM. For a shared line
    /// the write-back also means the core evicted its upper copy: its
    /// sharer bit is cleared, and an M-owner's write-back demotes the
    /// entry (`Shared` if others still hold it, else no upper copies).
    pub fn accept_writeback(&mut self, core: usize, now: u64, line_addr: u64) {
        self.touch();
        let shared = self.is_shared_line(line_addr);
        let tag_core = if shared { SHARED_CORE } else { core };
        let bank = self.bank_of(line_addr);
        let local = self.local_addr(line_addr);
        let a = Self::tag(tag_core, local);
        let had = self.banks[bank].cache.probe(a);
        if let Some(ev) = self.banks[bank].cache.writeback_fill(a) {
            self.victim(bank, ev, now, core);
        }
        if shared {
            self.banks[bank]
                .dir
                .entries
                .entry(local)
                .or_insert(DirLine::empty())
                .writeback_from(core);
        }
        let s = &mut self.per_core[core].l3;
        s.writebacks_in += 1;
        if !had {
            // The write-back allocated a line (the bank's array counts
            // this as a fill inside `writeback_fill`).
            s.fills += 1;
            self.push_event(core, line_addr, true);
        }
    }

    /// A write-through store that missed the core's L2: updates the L3
    /// copy when resident, otherwise posts the write to DRAM. Writing a
    /// resident shared line claims M ownership and recalls other
    /// sharers' copies.
    pub fn writethrough(&mut self, core: usize, now: u64, line_addr: u64) {
        self.touch();
        let shared = self.is_shared_line(line_addr);
        let tag_core = if shared { SHARED_CORE } else { core };
        let bank = self.bank_of(line_addr);
        let local = self.local_addr(line_addr);
        let a = Self::tag(tag_core, local);
        self.per_core[core].l3.writethrough_writes += 1;
        if self.banks[bank].cache.writethrough_from_above(a) {
            if shared {
                self.claim_ownership(bank, core, local, line_addr, now);
            }
        } else {
            self.post_dram_write(now, Self::tag(tag_core, line_addr), core, false);
        }
    }

    /// Notes a store by `core` that *hit* its private L2 on `line_addr`
    /// without descending here. Private lines need nothing; for a
    /// resident shared line the directory still has to learn about the
    /// write — ownership moves to the writer and other sharers are
    /// recalled. No latency is charged to the store (write-through posts
    /// are fire-and-forget); the recall messages occupy the home bank's
    /// port. Cheap no-op under `Replicate` (the tile does not even call
    /// in).
    pub fn note_shared_store(&mut self, core: usize, now: u64, line_addr: u64) {
        self.touch();
        if !self.is_shared_line(line_addr) {
            return;
        }
        let bank = self.bank_of(line_addr);
        let local = self.local_addr(line_addr);
        if self.banks[bank].dir.entries.contains_key(&local) {
            self.claim_ownership(bank, core, local, line_addr, now);
        }
    }

    /// Steps a write by `core` through the table for a resident shared
    /// line (fire-and-forget: stores are write-through posts), recalling
    /// whatever sharers and dirty data the transition obliges.
    fn claim_ownership(&mut self, bank: usize, core: usize, local: u64, line_addr: u64, now: u64) {
        let Some(mut e) = self.banks[bank].dir.entries.get(&local).copied() else {
            return;
        };
        let ob = e.access(&self.table, core, true);
        if ob.invalidate != 0 {
            self.recall_sharers(ob.invalidate, core, line_addr);
            self.occupy_bank(bank, now, self.coherence.inval_latency);
        }
        if ob.intervention {
            // The previous owner's dirty data is recalled (and written
            // back, unless shared cache-to-cache) before the new owner's
            // write supersedes it.
            self.per_core[core].coh.interventions += 1;
            if ob.writeback {
                self.post_dram_write(now, Self::tag(SHARED_CORE, line_addr), ob.old_owner, true);
            }
            self.occupy_bank(bank, now, self.coherence.intervention_latency);
        }
        if ob.memory_read {
            // MSI re-fetch: untimed (the store is fire-and-forget), but
            // the channel traffic is still accounted.
            let tagged = Self::tag(SHARED_CORE, line_addr);
            let ch = self.channel_of(tagged);
            self.channels[ch].stats.reads += 1;
            self.per_core[core].dram.reads += 1;
        }
        self.banks[bank].dir.entries.insert(local, e);
    }

    /// A `dma-get` bus-request snoop that missed the core's L1/L2. A hit
    /// on a shared line held dirty (`Modified`/`Owned`) by *another*
    /// core is the in-flight-DMA intervention: the owner's dirty data is
    /// recalled per the protocol table (so the transfer reads current
    /// data) — written back and downgraded under MESI/MESIF, kept
    /// dirty-shared under MOESI, re-read from memory under MSI.
    pub fn snoop(&mut self, core: usize, now: u64, line_addr: u64) -> bool {
        self.touch();
        let shared = self.is_shared_line(line_addr);
        let tag_core = if shared { SHARED_CORE } else { core };
        let bank = self.bank_of(line_addr);
        let local = self.local_addr(line_addr);
        self.per_core[core].l3.snoops += 1;
        let a = Self::tag(tag_core, local);
        let present = self.banks[bank].cache.snoop(a);
        if shared && present {
            if let Some(mut e) = self.banks[bank].dir.entries.get(&local).copied() {
                // A DMA engine is not a caching reader, so only the
                // dirty-recall transition of the protocol table applies
                // (RemoteRead on a dirty state): the sharer set is left
                // alone and the DMA never joins it.
                if let Some(ob) = e.snoop_recall(&self.table, core) {
                    self.per_core[core].coh.interventions += 1;
                    if ob.writeback {
                        self.post_dram_write(
                            now,
                            Self::tag(SHARED_CORE, line_addr),
                            ob.old_owner,
                            true,
                        );
                    }
                    if ob.memory_read {
                        // MSI: the DMA re-reads the written-back line
                        // from memory (untimed — the DMAC times the
                        // transfer; the channel accounting lands here).
                        let tagged = Self::tag(SHARED_CORE, line_addr);
                        let ch = self.channel_of(tagged);
                        self.channels[ch].stats.reads += 1;
                        self.per_core[core].dram.reads += 1;
                    }
                    self.occupy_bank(bank, now, self.coherence.intervention_latency);
                    self.banks[bank].dir.entries.insert(local, e);
                }
            }
        }
        present
    }

    /// A `dma-put` bus-request invalidation. Returns whether the line was
    /// resident. Invalidating a shared line retires its directory entry
    /// and recalls every *other* core's upper copy (the requester
    /// invalidates its own L1/L2 as part of the `dma-put` walk); no
    /// write-back — the DMA data supersedes any cached copy (§2.1).
    pub fn invalidate(&mut self, core: usize, line_addr: u64) -> bool {
        self.touch();
        let shared = self.is_shared_line(line_addr);
        let tag_core = if shared { SHARED_CORE } else { core };
        let bank = self.bank_of(line_addr);
        let local = self.local_addr(line_addr);
        self.per_core[core].l3.invalidations += 1;
        let a = Self::tag(tag_core, local);
        let present = self.banks[bank].cache.invalidate(a).is_some();
        if shared {
            if let Some(e) = self.banks[bank].dir.entries.remove(&local) {
                self.recall_sharers(e.sharers & !(1 << core), core, line_addr);
            }
        }
        if present {
            self.push_event(core, line_addr, false);
        }
        present
    }

    /// Counts a DRAM line read with no timing (DMA transfers are timed by
    /// the DMAC; the channel accounting still belongs here). `line_addr`
    /// selects the channel the line is charged to.
    pub fn note_dram_read(&mut self, core: usize, line_addr: u64) {
        self.touch();
        let ch = self.channel_of(line_addr);
        self.channels[ch].stats.reads += 1;
        self.per_core[core].dram.reads += 1;
    }

    /// Counts a DRAM line write with no timing (DMA write-back traffic).
    pub fn note_dram_write(&mut self, core: usize, line_addr: u64) {
        self.touch();
        let ch = self.channel_of(line_addr);
        self.channels[ch].stats.writes += 1;
        self.per_core[core].dram.writes += 1;
    }

    /// Whether `line_addr` (a core-local address) is resident in the
    /// shared L3 on behalf of `core` (for a shared line: on behalf of
    /// every core).
    pub fn probe(&self, core: usize, line_addr: u64) -> bool {
        let tag_core = if self.is_shared_line(line_addr) {
            SHARED_CORE
        } else {
            core
        };
        let bank = self.bank_of(line_addr);
        self.banks[bank]
            .cache
            .probe(Self::tag(tag_core, self.local_addr(line_addr)))
    }

    /// The MESI sharer count of a resident shared line (tests and
    /// reports; `None` when the line is not directory-tracked).
    pub fn sharer_count(&self, line_addr: u64) -> Option<u32> {
        if !self.is_shared_line(line_addr) {
            return None;
        }
        let bank = self.bank_of(line_addr);
        self.banks[bank]
            .dir
            .entries
            .get(&self.local_addr(line_addr))
            .map(|e| e.sharers.count_ones())
    }

    /// The earliest backside resource release strictly after `now` — any
    /// L3 bank port, the DRAM channel, or a DRAM bank freeing up — if
    /// any. Part of the memory-side event horizon: cycle-skipping cores
    /// never jump past it, so arbitration-relevant backside state is
    /// observed at the cycle it changes (see the module docs).
    pub fn next_event_after(&self, now: u64) -> Option<u64> {
        let cached = self.horizon_cache.get();
        if cached == HORIZON_NONE {
            return None;
        }
        if cached != HORIZON_DIRTY && cached > now {
            return Some(cached);
        }
        let next = self
            .banks
            .iter()
            .map(|b| b.busy_until)
            .filter(|&t| t > now)
            .chain(
                self.channels
                    .iter()
                    .filter_map(|ch| ch.next_event_after(now)),
            )
            .min();
        self.horizon_cache.set(next.unwrap_or(HORIZON_NONE));
        next
    }
}

/// The per-core memory tile plus its handle on the shared backside.
pub struct MemSystem {
    /// Configuration (geometry reported by Table 1 binaries).
    pub cfg: MemConfig,
    /// L1 instruction cache.
    pub l1i: Cache,
    /// L1 data cache.
    pub l1d: Cache,
    /// Unified L2.
    pub l2: Cache,
    /// L1D miss-status holding registers.
    pub mshr: MshrFile,
    /// IP-based stream prefetcher.
    pub prefetcher: StreamPrefetcher,
    /// Data TLB (bypassed by LM accesses).
    pub tlb: Tlb,
    /// Local memory, when configured.
    pub lm: Option<LocalMem>,
    /// DMA controller.
    pub dmac: Dmac,
    /// Residency event stream for the coherence tracker (`None`
    /// disables collection; benchmarks keep it off).
    pub events: Option<Vec<CacheEvent>>,
    backside: Rc<RefCell<SharedBackside>>,
    core_id: usize,
    /// Cached tile-local horizon (`min` of the MSHR fills and in-flight
    /// DMA): `HORIZON_DIRTY` after any access that can move either,
    /// `HORIZON_NONE` when both are provably idle.
    tile_horizon: Cell<u64>,
}

impl MemSystem {
    /// Builds a single-core memory system with a private backside.
    pub fn new(cfg: MemConfig) -> Self {
        let backside = Rc::new(RefCell::new(SharedBackside::new(&cfg, 1)));
        Self::with_backside(cfg, backside, 0)
    }

    /// Builds one core's tile in front of a shared backside.
    ///
    /// Panics if `core_id` is out of range for the backside.
    pub fn with_backside(
        cfg: MemConfig,
        backside: Rc<RefCell<SharedBackside>>,
        core_id: usize,
    ) -> Self {
        assert!(
            core_id < backside.borrow().n_cores(),
            "core_id {core_id} out of range for the shared backside"
        );
        MemSystem {
            l1i: Cache::new(cfg.l1i.clone()),
            l1d: Cache::new(cfg.l1d.clone()),
            l2: Cache::new(cfg.l2.clone()),
            mshr: MshrFile::new(cfg.mshr_entries),
            prefetcher: StreamPrefetcher::new(cfg.prefetch.clone()),
            tlb: Tlb::new(cfg.tlb.clone()),
            lm: cfg.lm.clone().map(LocalMem::new),
            dmac: Dmac::with_faults(cfg.dma.clone(), &cfg.fault, core_id as u64),
            events: None,
            backside,
            core_id,
            tile_horizon: Cell::new(HORIZON_DIRTY),
            cfg,
        }
    }

    /// The shared backside this tile sits in front of.
    pub fn shared_backside(&self) -> Rc<RefCell<SharedBackside>> {
        Rc::clone(&self.backside)
    }

    /// This tile's core id within the shared backside.
    pub fn core_id(&self) -> usize {
        self.core_id
    }

    /// Enables residency-event collection (coherence-tracker runs).
    pub fn enable_events(&mut self) {
        self.events = Some(Vec::new());
        self.backside.borrow_mut().enable_events(self.core_id);
    }

    /// Drains collected residency events (this core's tile plus its share
    /// of backside events).
    pub fn drain_events(&mut self) -> Vec<CacheEvent> {
        self.pull_backside_events();
        match &mut self.events {
            Some(v) => std::mem::take(v),
            None => Vec::new(),
        }
    }

    /// Appends this core's pending backside events to the local stream,
    /// preserving the order relative to L1/L2 events.
    fn pull_backside_events(&mut self) {
        if let Some(v) = &mut self.events {
            let mut incoming = self.backside.borrow_mut().take_events(self.core_id);
            v.append(&mut incoming);
        }
    }

    #[inline]
    fn ev(&mut self, line: u64, fill: bool) {
        if let Some(v) = &mut self.events {
            v.push(CacheEvent { line, fill });
        }
    }

    /// DRAM traffic moved on behalf of this core.
    pub fn dram_stats(&self) -> DramStats {
        self.backside.borrow().core_stats(self.core_id).dram
    }

    /// This core's share of the shared-L3 activity.
    pub fn l3_stats(&self) -> CacheStats {
        self.backside.borrow().core_stats(self.core_id).l3
    }

    /// This core's backside contention statistics.
    pub fn backside_stats(&self) -> BacksideCoreStats {
        self.backside.borrow().core_stats(self.core_id)
    }

    /// Whether this core's `addr` is resident in the shared L3.
    pub fn l3_probe(&self, addr: u64) -> bool {
        let line = self.l2.line_addr(addr);
        self.backside.borrow().probe(self.core_id, line)
    }

    /// A local-memory access: fixed latency, no TLB, no cache activity.
    ///
    /// Panics if the system has no LM (the machine must not route LM
    /// accesses here in cache-based mode).
    pub fn lm_access(&mut self, write: bool) -> AccessResponse {
        let lm = self.lm.as_mut().expect("lm_access on a system without LM");
        AccessResponse {
            latency: lm.access(write),
            served: Level::Lm,
            tlb_penalty: 0,
        }
    }

    /// Applies any back-invalidation messages the directory addressed to
    /// this tile's L1/L2 (recalls of shared lines another core wrote or
    /// evicted), returning the tile-side port occupancy the recalls
    /// cost: each *dirty* line recalled out of the L1/L2 charges
    /// [`CoherenceConfig::dirty_recall_latency`] cycles to the memory
    /// operation draining the queue, so recall storms couple into the
    /// victim core's timing. A cheap no-op under `Replicate` — the
    /// backside is not even consulted.
    fn apply_upper_invals(&mut self) -> u64 {
        if !self.cfg.coherence.mode.is_directory() {
            return 0;
        }
        if !self.backside.borrow().has_upper_invals(self.core_id) {
            return 0;
        }
        let lines = self.backside.borrow_mut().take_upper_invals(self.core_id);
        let mut dirty = 0u64;
        for a in lines {
            // Either level can owe a transfer for a dirty copy. (The
            // shipped Table 1 L1D is write-through and never dirty, but
            // hetero tiles are free to configure a write-back L1D.)
            if let Some(was_dirty) = self.l1d.invalidate(a) {
                self.ev(a, false);
                dirty += u64::from(was_dirty);
            }
            if let Some(was_dirty) = self.l2.invalidate(a) {
                self.ev(a, false);
                dirty += u64::from(was_dirty);
            }
        }
        if dirty == 0 {
            return 0;
        }
        let mut bs = self.backside.borrow_mut();
        bs.note_dirty_recalls(self.core_id, dirty);
        dirty * bs.dirty_recall_latency()
    }

    /// A demand access to system memory from instruction at `pc`.
    pub fn data_access(&mut self, now: u64, pc: u64, addr: u64, write: bool) -> AccessResponse {
        self.tile_horizon.set(HORIZON_DIRTY);
        let recall_penalty = self.apply_upper_invals();
        let tlb_penalty = self.tlb.access(addr);
        let now = now + tlb_penalty + recall_penalty;

        // Train the prefetcher and issue its fills before the demand
        // access so a just-prefetched line does not count as a demand hit
        // for the line that triggered it.
        let line_bytes = self.cfg.l1d.line_bytes;
        let targets = self.prefetcher.observe(pc, addr, line_bytes);
        for t in targets {
            self.prefetch_line(now, t);
        }

        let kind = if write {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        if self.l1d.access(addr, kind) {
            if write {
                self.writethrough_below(now, addr);
            }
            // The line may have been placed by a miss whose fetch is still
            // in flight; such accesses wait on the MSHR entry (secondary
            // miss merge).
            let line_addr = self.l1d.line_addr(addr);
            let latency = match self.mshr.pending_ready(line_addr, now) {
                Some(ready) => (ready - now).max(self.cfg.l1d.latency),
                None => self.cfg.l1d.latency,
            };
            return AccessResponse {
                latency: latency + tlb_penalty + recall_penalty,
                served: Level::L1,
                tlb_penalty,
            };
        }

        // L1 miss: allocate or merge in the MSHR file.
        let line_addr = self.l1d.line_addr(addr);
        let (latency, served) = match self.mshr.lookup_or_allocate(line_addr, now) {
            MshrOutcome::Merged { ready_at } => {
                ((ready_at - now).max(self.cfg.l1d.latency), Level::L1)
            }
            MshrOutcome::Allocated { idx, start_at } => {
                let (below, served, intervention) = self.walk_l2(start_at, line_addr, kind);
                let total = (start_at - now) + self.cfg.l1d.latency + below;
                self.mshr.set_ready(idx, now + total);
                if intervention {
                    self.mshr.note_intervention(idx);
                }
                // Place the line in L1 (write-through L1 victims are
                // always clean).
                if let Some(ev) = self.l1d.fill(line_addr, false, false) {
                    self.ev(ev.addr, false);
                }
                self.ev(line_addr, true);
                (total, served)
            }
        };
        if write {
            // Write-allocate + write-through: after the fill, the write
            // updates L1 and is forwarded below.
            self.writethrough_below(now, addr);
        }
        AccessResponse {
            latency: latency + tlb_penalty + recall_penalty,
            served,
            tlb_penalty,
        }
    }

    /// Propagates a write-through store below L1. The walk above
    /// guarantees L2 normally holds the line; when it does not, the write
    /// keeps descending into the shared backside (and is posted to DRAM
    /// at the bottom). Under the directory modes, a store absorbed by
    /// the L2 still notifies the directory when the line is shared, so
    /// ownership tracking stays sound.
    fn writethrough_below(&mut self, now: u64, addr: u64) {
        let a2 = self.l2.line_addr(addr);
        if self.l2.writethrough_from_above(a2) {
            if self.cfg.coherence.mode.is_directory() {
                self.backside
                    .borrow_mut()
                    .note_shared_store(self.core_id, now, a2);
                self.pull_backside_events();
            }
            return;
        }
        self.backside
            .borrow_mut()
            .writethrough(self.core_id, now, a2);
        self.pull_backside_events();
    }

    /// Walks L2 and then the shared L3 → DRAM backside for a missing L1
    /// line. Returns the latency beyond L1, the serving level, and
    /// whether the backside walk paid an M-state intervention.
    fn walk_l2(&mut self, now: u64, line_addr: u64, kind: AccessKind) -> (u64, Level, bool) {
        if self.l2.access(line_addr, kind) {
            return (self.cfg.l2.latency, Level::L2, false);
        }
        let (below, served, intervention) = self.backside.borrow_mut().access(
            self.core_id,
            now + self.cfg.l2.latency,
            line_addr,
            kind,
        );
        self.pull_backside_events();
        // Fill L2; dirty victims cascade into the backside.
        if let Some(ev) = self.l2.fill(line_addr, false, kind == AccessKind::Prefetch) {
            self.ev(ev.addr, false);
            if ev.dirty {
                self.backside
                    .borrow_mut()
                    .accept_writeback(self.core_id, now, ev.addr);
                self.pull_backside_events();
            }
        }
        self.ev(line_addr, true);
        (self.cfg.l2.latency + below, served, intervention)
    }

    /// Issues one prefetch to `line` (fills L1, L2 and L3 as in Table 1).
    ///
    /// The fill is tracked in the MSHR file with its real completion
    /// time, so demand accesses that catch up with an in-flight prefetch
    /// wait for the remaining latency (prefetch *timeliness* matters:
    /// simple loops can outrun the prefetcher, §4.3).
    fn prefetch_line(&mut self, now: u64, line: u64) {
        if self.l1d.access(line, AccessKind::Prefetch) {
            return; // already resident: counted as a prefetch hit
        }
        // Bring the line in below (counts L2/L3 activity), then fill
        // upward flagged as prefetched.
        let (latency, _, intervention) = self.walk_l2(now, line, AccessKind::Prefetch);
        if let Some(ev) = self.l1d.fill(line, false, true) {
            self.ev(ev.addr, false);
        }
        self.ev(line, true);
        // Record the in-flight window so demand accesses that catch up
        // with this prefetch wait for it.
        if let crate::mshr::MshrOutcome::Allocated { idx, start_at } =
            self.mshr.lookup_or_allocate(line, now)
        {
            self.mshr.set_ready(idx, start_at + latency);
            if intervention {
                self.mshr.note_intervention(idx);
            }
        }
    }

    /// Instruction fetch of the line containing `addr`.
    pub fn inst_fetch(&mut self, now: u64, addr: u64) -> u64 {
        if self.l1i.access(addr, AccessKind::Read) {
            return self.cfg.l1i.latency;
        }
        let line = self.l1i.line_addr(addr);
        let (below, _, _) = self.walk_l2(now, line, AccessKind::Read);
        self.l1i.fill(line, false, false);
        self.cfg.l1i.latency + below
    }

    /// Executes the bus side of a `dma-get`: snoops the hierarchy for
    /// every line of `[sm_addr, sm_addr+bytes)` (paper §2.1: "the bus
    /// requests generated by a dma-get look for the data in the caches")
    /// and returns the command completion cycle.
    pub fn dma_get(&mut self, now: u64, sm_addr: u64, bytes: u64, tag: u8) -> u64 {
        self.tile_horizon.set(HORIZON_DIRTY);
        // Draining pending recalls first delays the command issue by the
        // dirty-recall port occupancy, like any other memory operation.
        let now = now + self.apply_upper_invals();
        let line = self.cfg.l1d.line_bytes;
        let mut a = sm_addr & !(line - 1);
        while a < sm_addr + bytes {
            // Snoop top-down; stop at the first level holding the line.
            if !self.l1d.snoop(a) && !self.l2.snoop(a) {
                let mut bs = self.backside.borrow_mut();
                if !bs.snoop(self.core_id, now, a) {
                    bs.note_dram_read(self.core_id, a);
                }
            }
            a += line;
        }
        if let Some(lm) = self.lm.as_mut() {
            lm.note_dma_in(bytes);
        }
        self.dmac.issue(DmaOp::Get, bytes, tag, now)
    }

    /// Executes the bus side of a `dma-put`: copies to main memory and
    /// invalidates every matching cache line in the whole hierarchy
    /// (paper §2.1). Returns the command completion cycle.
    pub fn dma_put(&mut self, now: u64, sm_addr: u64, bytes: u64, tag: u8) -> u64 {
        self.tile_horizon.set(HORIZON_DIRTY);
        let now = now + self.apply_upper_invals();
        let line = self.cfg.l1d.line_bytes;
        let mut a = sm_addr & !(line - 1);
        while a < sm_addr + bytes {
            if self.l1d.invalidate(a).is_some() {
                self.ev(a, false);
            }
            if self.l2.invalidate(a).is_some() {
                self.ev(a, false);
            }
            {
                let mut bs = self.backside.borrow_mut();
                bs.invalidate(self.core_id, a);
                bs.note_dram_write(self.core_id, a);
            }
            a += line;
        }
        self.pull_backside_events();
        if let Some(lm) = self.lm.as_mut() {
            lm.note_dma_out(bytes);
        }
        self.dmac.issue(DmaOp::Put, bytes, tag, now)
    }

    /// `dma-synch`: the cycle at which the wait for `tag` ends.
    pub fn dma_synch(&mut self, now: u64, tag: u8) -> u64 {
        self.tile_horizon.set(HORIZON_DIRTY);
        self.dmac.synch(tag, now)
    }

    /// The pending-work horizon of this tile's memory side: the earliest
    /// cycle strictly after `now` at which an outstanding MSHR fill
    /// completes, the DMA engine frees up or lands a transfer, or a
    /// shared backside resource (L3 port, DRAM channel) becomes free —
    /// `None` when nothing is pending. The machine forwards this through
    /// `MemoryPort::next_mem_event_at` so a cycle-skipping core never
    /// jumps past a backside event that could change arbitration.
    pub fn next_event_at(&self, now: u64) -> Option<u64> {
        let cached = self.tile_horizon.get();
        let local = if cached == HORIZON_NONE {
            None
        } else if cached != HORIZON_DIRTY && cached > now {
            Some(cached)
        } else {
            let v = [
                self.mshr.next_ready_after(now),
                self.dmac.next_event_after(now),
            ]
            .into_iter()
            .flatten()
            .min();
            self.tile_horizon.set(v.unwrap_or(HORIZON_NONE));
            v
        };
        match (local, self.backside.borrow().next_event_after(now)) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Total LM activity for the Table 3 "LM Accesses" column: CPU
    /// accesses plus DMA line transfers.
    pub fn lm_total_accesses(&self) -> u64 {
        match &self.lm {
            Some(lm) => {
                let line = self.cfg.l1d.line_bytes;
                lm.stats.cpu_accesses()
                    + (lm.stats.dma_bytes_in + lm.stats.dma_bytes_out).div_ceil(line)
            }
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_system(prefetch: bool) -> MemSystem {
        let mut cfg = MemConfig::hybrid();
        cfg.prefetch.enabled = prefetch;
        MemSystem::new(cfg)
    }

    #[test]
    fn cold_miss_walks_to_dram_then_hits() {
        let mut m = small_system(false);
        let r = m.data_access(0, 0x40, 0x1000_0000, false);
        assert_eq!(r.served, Level::Dram);
        // 2 (L1) + 15 (L2) + 40 (L3) + 200 (DRAM) + 30 (TLB miss)
        assert_eq!(r.latency, 2 + 15 + 40 + 200 + 30);
        assert_eq!(r.tlb_penalty, 30);
        let r2 = m.data_access(300, 0x40, 0x1000_0000, false);
        assert_eq!(r2.served, Level::L1);
        assert_eq!(r2.latency, 2);
    }

    #[test]
    fn l2_and_l3_service_levels() {
        let mut m = small_system(false);
        m.data_access(0, 0x40, 0x1000_0000, false); // to DRAM, fills all
                                                    // Evict from tiny L1 by filling its set; L1 32KB/8w/64B = 64 sets,
                                                    // set stride = 64*64 = 4096.
        for i in 1..=8u64 {
            m.data_access(1000 * i, 0x40, 0x1000_0000 + i * 4096, false);
        }
        let r = m.data_access(100_000, 0x40, 0x1000_0000, false);
        assert_eq!(r.served, Level::L2, "line must still be in L2");
        assert_eq!(r.latency, 2 + 15);
    }

    #[test]
    fn mshr_merges_same_line() {
        let mut m = small_system(false);
        let r1 = m.data_access(0, 0x40, 0x1000_0000, false);
        assert_eq!(r1.served, Level::Dram);
        // Reset TLB effect by touching the page already.
        // Second access to the same line while "in flight" at cycle 10.
        let r2 = m.data_access(10, 0x44, 0x1000_0008, false);
        assert_eq!(r2.served, Level::L1, "merged miss serves from L1 fill");
        assert!(r2.latency < r1.latency);
        assert_eq!(m.mshr.stats.merges, 1);
        // DRAM was read exactly once.
        assert_eq!(m.dram_stats().reads, 1);
    }

    #[test]
    fn write_through_l1_forwards_to_l2() {
        let mut m = small_system(false);
        m.data_access(0, 0x40, 0x1000_0000, false); // fill
        let before = m.l2.stats.writethrough_writes;
        let r = m.data_access(300, 0x44, 0x1000_0000, true); // store hit
        assert_eq!(r.served, Level::L1);
        assert_eq!(m.l2.stats.writethrough_writes, before + 1);
    }

    #[test]
    fn store_miss_allocates_then_forwards() {
        let mut m = small_system(false);
        let r = m.data_access(0, 0x40, 0x2000_0000, true);
        assert_eq!(r.served, Level::Dram);
        assert!(m.l1d.probe(0x2000_0000), "write-allocate fills L1");
        assert_eq!(m.l2.stats.writethrough_writes, 1);
        // L2 line is dirty now; evicting it must cascade a write-back.
    }

    #[test]
    fn lm_access_bypasses_everything() {
        let mut m = small_system(false);
        let r = m.lm_access(false);
        assert_eq!(r.served, Level::Lm);
        assert_eq!(r.latency, 2);
        assert_eq!(r.tlb_penalty, 0);
        assert_eq!(m.tlb.lookups(), 0);
        assert_eq!(m.l1d.stats.demand_accesses(), 0);
    }

    #[test]
    fn prefetcher_fills_ahead() {
        let mut m = small_system(true);
        // Stream with stride 64 (one line per access): after training,
        // later accesses must hit on prefetched lines.
        let mut dram_before = 0;
        for i in 0..64u64 {
            let r = m.data_access(i * 1000, 0x40, 0x1000_0000 + i * 64, false);
            if i == 16 {
                dram_before = m.dram_stats().reads;
            }
            if i > 20 {
                assert_eq!(
                    r.served,
                    Level::L1,
                    "stream must hit after training (i={i})"
                );
            }
        }
        assert!(m.dram_stats().reads > dram_before, "prefetches read DRAM");
        assert!(m.l1d.prefetch_useful > 0);
    }

    #[test]
    fn dma_get_snoops_and_put_invalidates() {
        let mut m = small_system(false);
        // Load a line so caches hold it.
        m.data_access(0, 0x40, 0x1000_0000, false);
        let l1_snoops = m.l1d.stats.snoops;
        m.dma_get(1000, 0x1000_0000, 128, 0);
        assert_eq!(m.l1d.stats.snoops, l1_snoops + 2, "two lines snooped");
        // dma-put invalidates everywhere.
        assert!(m.l1d.probe(0x1000_0000));
        m.dma_put(2000, 0x1000_0000, 64, 0);
        assert!(!m.l1d.probe(0x1000_0000));
        assert!(!m.l2.probe(0x1000_0000));
        assert!(!m.l3_probe(0x1000_0000));
        assert_eq!(m.l1d.stats.invalidations, 1);
    }

    #[test]
    fn dma_synch_waits_for_tagged_transfers() {
        let mut m = small_system(false);
        let done = m.dma_get(0, 0x1000_0000, 4096, 3);
        assert!(done > 0);
        assert_eq!(m.dma_synch(10, 3), done);
        assert_eq!(m.dma_synch(done + 5, 3), done + 5);
    }

    #[test]
    fn inst_fetch_caches_lines() {
        let mut m = small_system(false);
        let cold = m.inst_fetch(0, 0x0);
        assert!(cold > 2);
        let warm = m.inst_fetch(300, 0x8);
        assert_eq!(warm, 2, "same I-line hits");
    }

    #[test]
    fn lm_total_accesses_combines_cpu_and_dma() {
        let mut m = small_system(false);
        m.lm_access(true);
        m.lm_access(false);
        m.dma_get(0, 0x1000_0000, 128, 0);
        assert_eq!(m.lm_total_accesses(), 2 + 2);
    }

    #[test]
    fn cache_based_config_has_no_lm() {
        let cfg = MemConfig::cache_based();
        assert!(cfg.lm.is_none());
        assert_eq!(cfg.l1d.size_bytes, 64 * 1024);
        let m = MemSystem::new(cfg);
        assert!(m.lm.is_none());
    }

    #[test]
    #[should_panic(expected = "without LM")]
    fn lm_access_without_lm_panics() {
        let mut m = MemSystem::new(MemConfig::cache_based());
        m.lm_access(false);
    }

    // ------------------------------------------------- shared backside

    /// Two tiles in front of one backside, as a multi-core machine
    /// builds them.
    fn shared_pair(l3_port_gap: u64) -> (MemSystem, MemSystem) {
        let mut cfg = MemConfig::hybrid();
        cfg.prefetch.enabled = false;
        cfg.l3_port_gap = l3_port_gap;
        let backside = Rc::new(RefCell::new(SharedBackside::new(&cfg, 2)));
        let a = MemSystem::with_backside(cfg.clone(), Rc::clone(&backside), 0);
        let b = MemSystem::with_backside(cfg, backside, 1);
        (a, b)
    }

    #[test]
    fn same_address_on_two_cores_stays_private_in_shared_l3() {
        let (mut a, mut b) = shared_pair(0);
        a.data_access(0, 0x40, 0x1000_0000, false);
        // Core 1 reading the same (core-local) address must not hit core
        // 0's line: private data is tagged per core in the shared array.
        let r = b.data_access(10_000, 0x40, 0x1000_0000, false);
        assert_eq!(r.served, Level::Dram, "no false sharing across cores");
        assert!(a.l3_probe(0x1000_0000));
        assert!(b.l3_probe(0x1000_0000));
        assert_eq!(a.dram_stats().reads, 1);
        assert_eq!(b.dram_stats().reads, 1);
    }

    #[test]
    fn l3_port_contention_charges_waits_to_the_second_core() {
        let (mut a, mut b) = shared_pair(8);
        // Both cores miss to DRAM at the same cycle: the port serializes
        // them and the second core records the wait.
        a.data_access(0, 0x40, 0x1000_0000, false);
        b.data_access(0, 0x40, 0x1000_0000, false);
        let wait_a = a.backside_stats().bus_wait_cycles;
        let wait_b = b.backside_stats().bus_wait_cycles;
        assert_eq!(wait_a, 0, "first requester never waits");
        assert!(
            wait_b >= 8,
            "second requester waits for the port, got {wait_b}"
        );
        assert_eq!(a.backside_stats().bus_requests, 1);
        assert_eq!(b.backside_stats().bus_requests, 1);
    }

    #[test]
    fn uncontended_port_is_free_even_when_shared() {
        let (mut a, mut b) = shared_pair(8);
        a.data_access(0, 0x40, 0x1000_0000, false);
        // Far apart in time: no wait.
        b.data_access(100_000, 0x40, 0x2000_0000, false);
        assert_eq!(b.backside_stats().bus_wait_cycles, 0);
    }

    #[test]
    fn per_core_l3_stats_sum_to_shared_totals() {
        let (mut a, mut b) = shared_pair(0);
        for i in 0..32u64 {
            a.data_access(i * 500, 0x40, 0x1000_0000 + i * 64, false);
            b.data_access(i * 500 + 7, 0x44, 0x3000_0000 + i * 128, false);
        }
        // Write traffic at a 128 KB stride from both cores lands in one
        // L2 set *and* one (shared) L3 set: dirty L2 victims cascade
        // into the L3 as write-backs, and the other core's pressure
        // evicts some of them from the L3 first, so `accept_writeback`
        // exercises both its resident and its line-allocating paths.
        for i in 0..50u64 {
            a.data_access(20_000 + i * 600, 0x48, 0x5000_0000 + i * 0x20000, true);
            b.data_access(20_000 + i * 600 + 7, 0x4c, 0x6000_0000 + i * 0x20000, true);
        }
        assert!(
            a.l3_stats().writebacks_in > 0 && b.l3_stats().writebacks_in > 0,
            "the write pattern must actually cascade write-backs into the L3"
        );
        let backside = a.shared_backside();
        let total = backside.borrow().l3_total_stats();
        let mut sum = a.l3_stats();
        sum.merge(&b.l3_stats());
        assert_eq!(sum, total, "per-core shares must partition the totals");
        let dram_total = backside.borrow().dram_total_stats();
        let (da, db) = (a.dram_stats(), b.dram_stats());
        assert_eq!(da.reads + db.reads, dram_total.reads);
        assert_eq!(da.writes + db.writes, dram_total.writes);
        assert_eq!(da.row_hits + db.row_hits, dram_total.row_hits);
        assert_eq!(da.row_misses + db.row_misses, dram_total.row_misses);
        assert_eq!(
            da.row_conflicts + db.row_conflicts,
            dram_total.row_conflicts
        );
        assert_eq!(da.queue_stalls + db.queue_stalls, dram_total.queue_stalls);
        assert_eq!(da.ecc_retries + db.ecc_retries, dram_total.ecc_retries);
    }

    #[test]
    fn fault_counters_partition_chip_totals_exactly() {
        // The recovery counters obey the same attribution invariant as
        // every other backside stat: each injected event lands on
        // exactly one core's share.
        let mut cfg = MemConfig::hybrid();
        cfg.prefetch.enabled = false;
        cfg.l3_port_gap = 8;
        cfg.fault = FaultConfig::uniform(77, 0.4);
        let backside = Rc::new(RefCell::new(SharedBackside::new(&cfg, 2)));
        let mut a = MemSystem::with_backside(cfg.clone(), Rc::clone(&backside), 0);
        let mut b = MemSystem::with_backside(cfg, backside, 1);
        for i in 0..64u64 {
            // Same-cycle pairs so the bank ports actually contend (the
            // NACK site only rolls on contended arbitrations).
            a.data_access(i * 300, 0x40, 0x1000_0000 + i * 64, i % 5 == 0);
            b.data_access(i * 300, 0x44, 0x1000_0000 + i * 64 + 16, false);
        }
        let bs = a.shared_backside();
        let total_dram = bs.borrow().dram_total_stats();
        let total_coh = bs.borrow().coherence_total_stats();
        let (sa, sb) = (a.backside_stats(), b.backside_stats());
        assert!(
            total_dram.ecc_retries > 0,
            "rate 0.4 must inject ECC retries"
        );
        assert!(total_coh.dir_nacks > 0, "contended ports must see NACKs");
        assert_eq!(
            sa.dram.ecc_retries + sb.dram.ecc_retries,
            total_dram.ecc_retries
        );
        let mut coh = sa.coh;
        coh.merge(&sb.coh);
        assert_eq!(coh, total_coh, "NACK shares must partition");
    }

    #[test]
    fn shared_dram_channel_queues_across_cores() {
        let (mut a, mut b) = shared_pair(0);
        // Same-cycle DRAM misses share the channel: the second transfer
        // queues at least one burst gap behind the first (and possibly a
        // whole bank occupancy, if the hashed interleave put the two
        // cores' tagged rows in one bank).
        let ra = a.data_access(0, 0x40, 0x1000_0000, false);
        let rb = b.data_access(0, 0x40, 0x1000_0000, false);
        assert_eq!(ra.served, Level::Dram);
        assert_eq!(rb.served, Level::Dram);
        assert!(
            rb.latency >= ra.latency + 12,
            "second DRAM read must queue behind the first ({} vs {})",
            rb.latency,
            ra.latency
        );
        assert_eq!(a.dram_stats().row_misses, 1, "first opens its row");
        assert_eq!(
            b.dram_stats().row_accesses(),
            1,
            "second is row-classified too (tagged rows are distinct)"
        );
        assert_eq!(b.dram_stats().row_hits, 0, "distinct rows cannot hit");
    }

    #[test]
    fn different_l3_banks_do_not_conflict_on_the_port() {
        let (mut a, mut b) = shared_pair(8);
        // Adjacent lines interleave across L3 banks: same-cycle requests
        // to different banks both start immediately.
        a.data_access(0, 0x40, 0x1000_0000, false);
        b.data_access(0, 0x40, 0x1000_0040, false);
        assert_eq!(a.backside_stats().bank_conflicts, 0);
        assert_eq!(b.backside_stats().bank_conflicts, 0);
        assert_eq!(b.backside_stats().bus_wait_cycles, 0);
    }

    #[test]
    fn same_l3_bank_conflicts_and_counts() {
        let (mut a, mut b) = shared_pair(8);
        let backside = a.shared_backside();
        let n_banks = backside.borrow().n_banks() as u64;
        // Two same-cycle requests one bank-stride apart collide on one
        // bank's port; the second is charged the wait and the conflict.
        a.data_access(0, 0x40, 0x1000_0000, false);
        b.data_access(0, 0x44, 0x1000_0000 + n_banks * 64, false);
        assert_eq!(a.backside_stats().bank_conflicts, 0);
        assert_eq!(b.backside_stats().bank_conflicts, 1);
        assert!(b.backside_stats().bus_wait_cycles >= 8);
    }

    #[test]
    fn single_bank_backside_keeps_the_monolithic_geometry() {
        let mut cfg = MemConfig::hybrid();
        cfg.l3_geometry.banks = 1;
        let bs = SharedBackside::new(&cfg, 1);
        assert_eq!(bs.n_banks(), 1);
        assert_eq!(bs.banks[0].cache.cfg.num_sets(), cfg.l3.num_sets());
        // Bank-local addresses are the identity under one bank.
        assert_eq!(bs.local_addr(0x1234_5640), 0x1234_5640);
        assert_eq!(bs.global_addr(0x1234_5640, 0), 0x1234_5640);
    }

    #[test]
    fn bank_address_mapping_round_trips() {
        let cfg = MemConfig::hybrid();
        let bs = SharedBackside::new(&cfg, 1);
        for line in [0u64, 0x40, 0x1000_0000, 0x1000_0040, 0x3fff_ffc0] {
            let bank = bs.bank_of(line);
            assert!(bank < bs.n_banks());
            assert_eq!(bs.global_addr(bs.local_addr(line), bank), line);
        }
        // Adjacent lines rotate through the banks.
        assert_ne!(bs.bank_of(0x1000_0000), bs.bank_of(0x1000_0040));
    }

    // ------------------------------------------------- MESI directory

    /// Two tiles in Mesi mode with `[0x1000_0000, +8 MiB)` registered as
    /// cross-core shared.
    fn mesi_pair(l3_port_gap: u64) -> (MemSystem, MemSystem) {
        let mut cfg = MemConfig::hybrid();
        cfg.prefetch.enabled = false;
        cfg.l3_port_gap = l3_port_gap;
        cfg.coherence.mode = CoherenceMode::Mesi;
        let backside = Rc::new(RefCell::new(SharedBackside::new(&cfg, 2)));
        backside
            .borrow_mut()
            .mark_shared_range(0x1000_0000, 8 << 20);
        let a = MemSystem::with_backside(cfg.clone(), Rc::clone(&backside), 0);
        let b = MemSystem::with_backside(cfg, backside, 1);
        (a, b)
    }

    #[test]
    fn shared_read_is_served_without_replication() {
        let (mut a, mut b) = mesi_pair(0);
        a.data_access(0, 0x40, 0x1000_0000, false);
        // The second core hits the line the first brought in: one DRAM
        // read total, and the directory records two sharers.
        let r = b.data_access(10_000, 0x40, 0x1000_0000, false);
        assert_eq!(r.served, Level::L3, "read sharing must hit the L3");
        assert_eq!(a.dram_stats().reads, 1);
        assert_eq!(b.dram_stats().reads, 0, "no replicated DRAM read");
        assert_eq!(b.backside_stats().coh.shared_hits, 1);
        let bs = a.shared_backside();
        assert_eq!(bs.borrow().sharer_count(0x1000_0000), Some(2));
    }

    #[test]
    fn outside_registered_ranges_mesi_keeps_private_replicas() {
        let (mut a, mut b) = mesi_pair(0);
        a.data_access(0, 0x40, 0x5000_0000, false);
        let r = b.data_access(10_000, 0x40, 0x5000_0000, false);
        assert_eq!(r.served, Level::Dram, "private data stays core-tagged");
        assert_eq!(b.dram_stats().reads, 1);
        assert_eq!(b.backside_stats().coh.shared_hits, 0);
    }

    #[test]
    fn write_recalls_sharers_and_read_back_pays_intervention() {
        let (mut a, mut b) = mesi_pair(0);
        a.data_access(0, 0x40, 0x1000_0000, false);
        b.data_access(10_000, 0x44, 0x1000_0000, false);
        assert!(b.l1d.probe(0x1000_0000), "B holds an upper copy");
        // A stores to the shared line: its L2 absorbs the write-through,
        // and the directory recalls B's copy.
        a.data_access(20_000, 0x48, 0x1000_0004, true);
        assert_eq!(a.backside_stats().coh.invalidations_sent, 1);
        // B's next access first applies the recall (losing its L1/L2
        // copies), then re-misses into the L3, where A's M state forces
        // an intervention: A's dirty data is written back, charged to A.
        let writes_before = a.dram_stats().writes;
        let r = b.data_access(30_000, 0x4c, 0x1000_0000, false);
        assert_eq!(b.backside_stats().coh.upper_invals_applied, 1);
        assert!(!b.l1d.probe(0x1000_0010) || r.served == Level::L3);
        assert_eq!(r.served, Level::L3, "L3 still holds the line");
        assert_eq!(b.backside_stats().coh.interventions, 1);
        assert_eq!(
            a.dram_stats().writes,
            writes_before + 1,
            "the intervention write-back is charged to the owner"
        );
        let bs = a.shared_backside();
        assert_eq!(bs.borrow().sharer_count(0x1000_0000), Some(2));
    }

    #[test]
    fn dma_get_snoop_intervenes_on_remote_modified_line() {
        let (mut a, mut b) = mesi_pair(0);
        // A write-allocates the shared line: Modified, owned by A.
        a.data_access(0, 0x40, 0x1000_0000, true);
        let writes_before = a.dram_stats().writes;
        // B's dma-get over the same line snoops the hierarchy while the
        // line is M elsewhere: the owner's data must be recalled so the
        // transfer reads current data.
        b.dma_get(1000, 0x1000_0000, 64, 0);
        assert_eq!(b.backside_stats().coh.interventions, 1);
        assert_eq!(a.dram_stats().writes, writes_before + 1);
    }

    #[test]
    fn shared_line_eviction_back_invalidates_sharers() {
        let (mut a, mut b) = mesi_pair(0);
        // Both cores share line 0x1000_0000.
        a.data_access(0, 0x40, 0x1000_0000, false);
        b.data_access(1_000, 0x44, 0x1000_0000, false);
        assert!(b.l1d.probe(0x1000_0000));
        // A floods the victim's L3 bank set with other shared lines
        // until 0x1000_0000 is evicted. Bank-local set stride: banks *
        // sets_per_bank * line bytes.
        let bs = a.shared_backside();
        let (banks, ways, sets) = {
            let bs = bs.borrow();
            let ways = bs.banks[0].cache.cfg.ways as u64;
            (
                bs.n_banks() as u64,
                ways,
                bs.banks[0].cache.cfg.num_sets() as u64,
            )
        };
        let stride = banks * sets * 64;
        let mut i = 1u64;
        while bs.borrow().probe(0, 0x1000_0000) {
            a.data_access(10_000 + i * 700, 0x48, 0x1000_0000 + i * stride, false);
            assert!(i <= 2 * ways, "eviction must happen within the set");
            i += 1;
        }
        // The eviction recalled every sharer's copy (the sharer-eviction
        // race): B's next access applies it and re-misses to DRAM.
        assert!(a.backside_stats().coh.invalidations_sent >= 2);
        let r = b.data_access(900_000, 0x4c, 0x1000_0000, false);
        assert!(b.backside_stats().coh.upper_invals_applied >= 1);
        assert_eq!(r.served, Level::Dram, "the shared copy is gone");
    }

    #[test]
    fn dirty_recall_charges_the_victim_tile_port() {
        let (mut a, mut b) = mesi_pair(0);
        // B write-allocates the shared line: its L2 absorbs the
        // write-through and holds the line dirty; B owns it Modified.
        b.data_access(0, 0x40, 0x1000_0000, true);
        assert!(b.l2.probe(0x1000_0000));
        // Warm a private line into B's L1 (and its TLB page) so the
        // post-recall access below is a pure L1 hit.
        b.data_access(1_000, 0x48, 0x5000_0000, false);
        b.data_access(2_000, 0x48, 0x5000_0000, false);
        // A writes the shared line: ownership moves, B's dirty copy is
        // recalled via a queued back-invalidation.
        a.data_access(10_000, 0x44, 0x1000_0000, true);
        assert_eq!(a.backside_stats().coh.invalidations_sent, 1);
        // B's next memory operation drains the recall: the dirty line's
        // transfer occupies B's tile port, so even an unrelated L1 hit
        // pays the recall latency on top of its own.
        let lat = b.shared_backside().borrow().dirty_recall_latency();
        assert!(lat > 0, "default config must charge dirty recalls");
        let r = b.data_access(20_000, 0x4c, 0x5000_0000, false);
        assert_eq!(r.served, Level::L1);
        assert_eq!(r.latency, 2 + lat, "L1 hit + one dirty-recall charge");
        assert_eq!(b.backside_stats().coh.dirty_recalls, 1);
        assert_eq!(b.backside_stats().coh.upper_invals_applied, 1);
        // A clean recall costs nothing: B re-reads the line (Shared),
        // A writes again, and B's next hit pays no occupancy.
        b.data_access(30_000, 0x50, 0x1000_0000, false);
        a.data_access(40_000, 0x54, 0x1000_0004, true);
        let r = b.data_access(50_000, 0x58, 0x5000_0000, false);
        assert_eq!(r.latency, 2, "clean recalls charge no port occupancy");
        assert_eq!(b.backside_stats().coh.dirty_recalls, 1);
    }

    #[test]
    fn mesi_stats_still_partition_chip_totals_exactly() {
        // The satellite invariant: with interventions, recalls and
        // owner-attributed write-backs in play, per-core shares must
        // still sum to the aggregate backside totals for every counter.
        let (mut a, mut b) = mesi_pair(4);
        for i in 0..64u64 {
            a.data_access(i * 500, 0x40, 0x1000_0000 + i * 64, i % 5 == 0);
            b.data_access(i * 500 + 3, 0x44, 0x1000_0000 + i * 64, i % 7 == 0);
            b.data_access(i * 500 + 9, 0x48, 0x5000_0000 + i * 128, false);
        }
        // Force evictions of shared lines with set-conflicting traffic.
        let bs = a.shared_backside();
        let stride = {
            let bs = bs.borrow();
            bs.n_banks() as u64 * bs.banks[0].cache.cfg.num_sets() as u64 * 64
        };
        for i in 0..40u64 {
            a.data_access(100_000 + i * 800, 0x4c, 0x1000_0000 + i * stride, true);
        }
        let total_l3 = bs.borrow().l3_total_stats();
        let total_dram = bs.borrow().dram_total_stats();
        let total_coh = bs.borrow().coherence_total_stats();
        let (sa, sb) = (a.backside_stats(), b.backside_stats());
        let mut l3 = sa.l3;
        l3.merge(&sb.l3);
        assert_eq!(l3, total_l3, "L3 shares must partition the totals");
        assert_eq!(sa.dram.reads + sb.dram.reads, total_dram.reads);
        assert_eq!(sa.dram.writes + sb.dram.writes, total_dram.writes);
        assert_eq!(sa.dram.row_hits + sb.dram.row_hits, total_dram.row_hits);
        assert_eq!(
            sa.dram.row_misses + sb.dram.row_misses,
            total_dram.row_misses
        );
        assert_eq!(
            sa.dram.row_conflicts + sb.dram.row_conflicts,
            total_dram.row_conflicts
        );
        assert_eq!(
            sa.dram.queue_stalls + sb.dram.queue_stalls,
            total_dram.queue_stalls
        );
        // The directory-aware drain split partitions too: a stall whose
        // drained victim was an intervention write-back lands on the
        // owner, every other stall on the poster — one core either way.
        assert_eq!(
            sa.dram.intervention_drain_stalls + sb.dram.intervention_drain_stalls,
            total_dram.intervention_drain_stalls
        );
        assert_eq!(
            sa.dram.ecc_retries + sb.dram.ecc_retries,
            total_dram.ecc_retries
        );
        let mut coh = sa.coh;
        coh.merge(&sb.coh);
        assert_eq!(coh, total_coh, "coherence shares must partition");
        assert!(
            total_coh.shared_hits > 0 && total_coh.invalidations_sent > 0,
            "the workload must actually exercise the directory"
        );
    }

    #[test]
    fn replicate_mode_has_inert_directory_state() {
        let (mut a, mut b) = shared_pair(4);
        for i in 0..32u64 {
            a.data_access(i * 500, 0x40, 0x1000_0000 + i * 64, i % 3 == 0);
            b.data_access(i * 500 + 3, 0x44, 0x1000_0000 + i * 64, false);
        }
        let bs = a.shared_backside();
        assert_eq!(
            bs.borrow().coherence_total_stats(),
            CoherenceStats::default()
        );
        assert_eq!(bs.borrow().sharer_count(0x1000_0000), None);
        assert!(!bs.borrow().has_upper_invals(0));
        assert!(!bs.borrow().has_upper_invals(1));
    }

    #[test]
    fn backside_compatibility_checks_the_shared_slice_and_line_sizes() {
        let a = MemConfig::hybrid();
        // The cache-based system differs only above the L3: compatible.
        assert!(a.backside_compatible(&MemConfig::cache_based()));
        // Disagreeing on the shared slice is not.
        let mut b = MemConfig::hybrid();
        b.l3_geometry.banks = 1;
        assert!(!a.backside_compatible(&b));
        let mut b = MemConfig::hybrid();
        b.dram.gap += 1;
        assert!(!a.backside_compatible(&b));
        // A tile whose L2 line size diverges from the L3 granularity
        // would leave stale directory state behind: rejected even
        // though the L3 configurations match.
        let mut b = MemConfig::hybrid();
        b.l2.line_bytes = 128;
        assert!(!b.line_sizes_uniform());
        assert!(!a.backside_compatible(&b));
        // The fault plan's DRAM and NACK sites live in the shared slice:
        // tiles must agree on it.
        let mut b = MemConfig::hybrid();
        b.fault = FaultConfig::uniform(1, 0.1);
        assert!(!a.backside_compatible(&b));
    }

    #[test]
    fn single_core_system_reports_zero_waits() {
        let mut m = small_system(false);
        for i in 0..16u64 {
            m.data_access(i * 10, 0x40, 0x1000_0000 + i * 64, false);
        }
        assert_eq!(m.backside_stats().bus_wait_cycles, 0);
    }
}
