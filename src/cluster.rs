//! Hierarchical clusters: groups of tiles, each group in front of its
//! **own** backside slice, advanced in epoch-synchronized host threads.
//!
//! A [`ClusterTopology`] splits the machine's cores into `clusters`
//! groups of `cores_per_cluster` tiles. Each cluster is a full
//! [`MultiMachine`] — per-core tiles sharing one banked L3 + DRAM
//! backside — and the clusters' backsides are *disjoint*: the
//! CC-NUMA design point where each coherence island owns its last-level
//! cache and memory channel(s), joined only by an explicit inter-island
//! link.
//!
//! ## Cross-cluster shared data (v1: counted replication)
//!
//! Within a cluster, read-only shared arrays are served as usual
//! (directory-tracked shared lines under `CoherenceMode::Mesi`,
//! per-core replicas under `Replicate`). *Across* clusters, v1 does not
//! model a home-directory hop: a shared range whose sharers span
//! clusters falls back to one replica per cluster. That fallback is
//! never silent — [`cross_cluster_fallbacks`] counts the extra replicas
//! at plan-build time and the count travels through
//! [`ClusterRunReport::cross_cluster_fallbacks`] into the `coherence`
//! and `clusters` bench outputs, mirroring how intra-cluster layout
//! divergence is surfaced via `MultiMachine::replication_fallbacks`.
//!
//! ## Epoch-synchronized host parallelism
//!
//! Because the clusters' simulated state is disjoint, each can advance
//! on its own host thread. The drivers advance every cluster with the
//! same call sequence — `run_until(e)`, `run_until(2e)`, … with
//! `e = max(inter_cluster_latency, 1)` — and barrier between epochs
//! (the earliest cycle a cross-cluster message could matter is one
//! inter-cluster latency away, so an epoch never outruns it). The
//! scheduler state [`MultiMachine::run_until`] persists between calls
//! makes the chunked run *bit-identical* to one monolithic
//! [`MultiMachine::run`] per cluster, so:
//!
//! * threaded vs [`ClusterConfig::serial_clusters`] is bit-identical
//!   (every statistic, skip counters included), and
//! * both are bit-identical to running each cluster's `MultiMachine`
//!   standalone — which the equivalence tests pin against the
//!   `lockstep` oracle as well.
//!
//! The thread protocol uses a double barrier per epoch: each thread
//! runs its epoch, publishes its done flag, waits; every thread then
//! reads *all* flags (no thread mutates between the barriers, so they
//! agree), waits again, and either exits or starts the next epoch. A
//! cluster that halts or errors early keeps joining the barriers —
//! without simulating — until every cluster is done, so no thread ever
//! waits on an absent peer.
//!
//! ## Host-level degradation
//!
//! The barrier protocol makes a *vanished* peer fatal: a cluster thread
//! that panicked mid-epoch would leave every other thread blocked on
//! `Barrier::wait` forever. The drivers therefore contain faults
//! instead of hanging on them:
//!
//! * every epoch body (and the machine build, and the report
//!   collection) runs under `catch_unwind` — a panicking cluster marks
//!   itself done and **keeps joining the barriers**, so its peers run
//!   their course;
//! * an epoch watchdog bounds the barrier loop: a cluster still running
//!   past [`ClusterConfig::max_epochs`] epochs (derived from the cycle
//!   budget by default) is failed with [`ClusterFailure::Watchdog`]
//!   rather than spinning;
//! * the run then terminates with a structured [`ClusterError`] naming
//!   every failed cluster and carrying the *completed* clusters'
//!   reports — partial results instead of a poisoned hang.

use crate::machine::{MachineConfig, MultiMachine};
use crate::metrics::MultiRunReport;
use hsim_compiler::{CompiledKernel, Kernel};
use hsim_core::pipeline::SimError;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;

/// How a machine's cores are grouped into clusters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClusterTopology {
    /// Number of clusters (each with its own backside slice).
    pub clusters: usize,
    /// Tiles per cluster (sharing that cluster's backside).
    pub cores_per_cluster: usize,
}

impl ClusterTopology {
    /// A `clusters × cores_per_cluster` topology (both must be ≥ 1).
    pub fn new(clusters: usize, cores_per_cluster: usize) -> Self {
        assert!(clusters >= 1, "need at least one cluster");
        assert!(cores_per_cluster >= 1, "need at least one core per cluster");
        ClusterTopology {
            clusters,
            cores_per_cluster,
        }
    }

    /// Total cores across all clusters.
    pub fn total_cores(&self) -> usize {
        self.clusters * self.cores_per_cluster
    }
}

/// Configuration of a clustered run.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// The cluster shape.
    pub topology: ClusterTopology,
    /// Cycles an inter-cluster hop would cost. v1 models no such hops
    /// (cross-cluster sharing falls back to counted replication), but
    /// the value still sets the epoch length: clusters synchronize at
    /// least this often, so a future home-directory hop can never be
    /// outrun by a cluster that advanced too far.
    pub inter_cluster_latency: u64,
    /// Escape hatch: advance the clusters round-robin on the calling
    /// thread instead of one thread each. Bit-identical to the threaded
    /// path (the determinism tests pin this); useful for debugging and
    /// single-CPU hosts.
    pub serial_clusters: bool,
    /// Epoch watchdog bound: a cluster still running after this many
    /// epochs fails with [`ClusterFailure::Watchdog`] instead of
    /// looping. `None` (the default) derives the bound from the cycle
    /// budget — `max_cycles / epoch_len + 2` — which a healthy run can
    /// never reach (the per-core cycle limit fires first), so the
    /// watchdog only catches a host-level wedge.
    pub max_epochs: Option<u64>,
    /// Robustness test hook: panic the given cluster's host driver at
    /// its first epoch, exercising the containment path (the panic is
    /// caught, the peers complete, the run fails with a structured
    /// [`ClusterError`] instead of hanging on the barrier).
    pub inject_panic: Option<usize>,
}

impl ClusterConfig {
    /// Default inter-cluster hop latency (cycles) — also the epoch
    /// length. Roughly two DRAM round trips: far enough to amortize
    /// barrier overhead, close enough that a future inter-cluster
    /// protocol stays conservative.
    pub const DEFAULT_INTER_CLUSTER_LATENCY: u64 = 500;

    /// A threaded configuration with the default inter-cluster latency.
    pub fn new(topology: ClusterTopology) -> Self {
        ClusterConfig {
            topology,
            inter_cluster_latency: Self::DEFAULT_INTER_CLUSTER_LATENCY,
            serial_clusters: false,
            max_epochs: None,
            inject_panic: None,
        }
    }

    /// Switches to the serial (single-thread) cluster driver.
    pub fn serial(mut self) -> Self {
        self.serial_clusters = true;
        self
    }

    /// The epoch length in cycles (at least 1).
    pub fn epoch_len(&self) -> u64 {
        self.inter_cluster_latency.max(1)
    }

    /// The effective epoch watchdog bound under `cfg`:
    /// [`ClusterConfig::max_epochs`] when set, otherwise derived from
    /// the cycle budget so a healthy run can never trip it.
    pub fn effective_max_epochs(&self, cfg: &MachineConfig) -> u64 {
        self.max_epochs
            .unwrap_or_else(|| cfg.core.max_cycles.div_ceil(self.epoch_len()) + 2)
    }
}

/// Why one cluster of a clustered run failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClusterFailure {
    /// The cluster's simulation returned an error (deadlock, cycle
    /// limit, …).
    Sim(SimError),
    /// The cluster's host thread panicked; the payload is rendered to a
    /// string. The panic was contained — its peers ran their course.
    Panic(String),
    /// The epoch watchdog fired: the cluster was still running after
    /// the configured epoch bound (see [`ClusterConfig::max_epochs`]).
    Watchdog {
        /// Epochs the cluster had run when the watchdog fired.
        epochs: u64,
    },
}

impl std::fmt::Display for ClusterFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterFailure::Sim(e) => write!(f, "simulation error: {e}"),
            ClusterFailure::Panic(msg) => write!(f, "host thread panicked: {msg}"),
            ClusterFailure::Watchdog { epochs } => {
                write!(
                    f,
                    "epoch watchdog fired after {epochs} epochs without completion"
                )
            }
        }
    }
}

/// Structured failure of a clustered run: every failed cluster with its
/// cause, plus the reports of the clusters that *did* complete —
/// graceful degradation instead of a hang or an all-or-nothing error.
///
/// Equality (`==`, used by the determinism tests to pin threaded
/// against serial) compares the failure list only: `completed` carries
/// [`MultiRunReport`]s, which are data payloads, not part of the
/// error's identity.
#[derive(Clone, Debug)]
pub struct ClusterError {
    /// `(cluster id, cause)` for every failed cluster, ordered by id.
    pub failures: Vec<(usize, ClusterFailure)>,
    /// `(cluster id, report)` for every cluster that completed its run,
    /// ordered by id — partial results of the degraded run.
    pub completed: Vec<(usize, MultiRunReport)>,
}

impl PartialEq for ClusterError {
    fn eq(&self, other: &Self) -> bool {
        self.failures == other.failures
    }
}

impl Eq for ClusterError {}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} cluster(s) failed:", self.failures.len())?;
        for (c, cause) in &self.failures {
            write!(f, " [cluster {c}: {cause}]")?;
        }
        write!(f, "; {} cluster(s) completed", self.completed.len())
    }
}

impl std::error::Error for ClusterError {}

impl From<SimError> for ClusterFailure {
    fn from(e: SimError) -> Self {
        ClusterFailure::Sim(e)
    }
}

/// Renders a caught panic payload for [`ClusterFailure::Panic`].
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Aggregated results of a clustered run.
#[derive(Clone, Debug)]
pub struct ClusterRunReport {
    /// Per-cluster reports, indexed by cluster id (each covering that
    /// cluster's cores).
    pub per_cluster: Vec<MultiRunReport>,
    /// Machine makespan: the cycle the last core of any cluster halted.
    pub makespan: u64,
    /// Epoch-barrier rounds the run took.
    pub epochs: u64,
    /// Cycles per epoch (`ClusterConfig::epoch_len`).
    pub epoch_cycles: u64,
    /// Extra per-cluster replicas of shared arrays whose sharers span
    /// clusters (see [`cross_cluster_fallbacks`]) — cross-cluster
    /// traffic that v1 replicates instead of modeling, surfaced so it
    /// is never silently free.
    pub cross_cluster_fallbacks: u64,
}

impl ClusterRunReport {
    /// Number of clusters.
    pub fn n_clusters(&self) -> usize {
        self.per_cluster.len()
    }

    /// Total cores across all clusters.
    pub fn n_cores(&self) -> usize {
        self.per_cluster.iter().map(|r| r.n_cores()).sum()
    }

    /// Total committed instructions across all clusters.
    pub fn total_committed(&self) -> u64 {
        self.per_cluster.iter().map(|r| r.total_committed()).sum()
    }

    /// Total scheduler-skipped cycles across all clusters.
    pub fn total_skipped_cycles(&self) -> u64 {
        self.per_cluster
            .iter()
            .map(|r| r.total_skipped_cycles())
            .sum()
    }

    /// Intra-cluster replication fallbacks (diverged shard layouts),
    /// summed over clusters — distinct from the cross-cluster count.
    pub fn total_replication_fallbacks(&self) -> u64 {
        self.per_cluster
            .iter()
            .map(|r| r.replication_fallbacks)
            .sum()
    }

    /// Total DRAM line reads across all clusters and channels.
    pub fn total_dram_reads(&self) -> u64 {
        self.per_cluster.iter().map(|r| r.total_dram_reads()).sum()
    }

    /// Total injected-and-recovered DRAM ECC retries across all
    /// clusters (0 without a fault plan).
    pub fn total_ecc_retries(&self) -> u64 {
        self.per_cluster.iter().map(|r| r.total_ecc_retries()).sum()
    }

    /// Total DMA timeout retries across all clusters (0 without a
    /// fault plan).
    pub fn total_dma_retries(&self) -> u64 {
        self.per_cluster.iter().map(|r| r.total_dma_retries()).sum()
    }

    /// Total directory/bank NACKs across all clusters (0 without a
    /// fault plan).
    pub fn total_dir_nacks(&self) -> u64 {
        self.per_cluster.iter().map(|r| r.total_dir_nacks()).sum()
    }

    /// Total retry-budget escalations across all clusters (0 without a
    /// fault plan).
    pub fn total_escalations(&self) -> u64 {
        self.per_cluster.iter().map(|r| r.total_escalations()).sum()
    }
}

/// Extra replicas a clustered run creates for shared arrays whose
/// sharers span clusters: each of the kernel's shared-marked arrays is
/// replicated once per cluster instead of being served through an
/// inter-cluster home directory, so `spanning_arrays × (clusters − 1)`
/// replicas exist beyond the single-cluster machine's. 0 for one
/// cluster. Counted at plan-build time and reported through
/// [`ClusterRunReport::cross_cluster_fallbacks`].
pub fn cross_cluster_fallbacks(kernel: &Kernel, clusters: usize) -> u64 {
    if clusters <= 1 {
        return 0;
    }
    // The sharder marks replicated-whole read-only arrays `shared` on
    // the shards (never on the source kernel), so ask it directly: the
    // arrays shared across cluster-level superslices are exactly the
    // ones whose sharers would span clusters. A kernel that cannot
    // shard across clusters has no clustered run to pay for.
    match kernel.shard(clusters) {
        Ok(superslices) => {
            let spanning = superslices[0].arrays.iter().filter(|a| a.shared).count() as u64;
            spanning * (clusters as u64 - 1)
        }
        Err(_) => 0,
    }
}

/// Per-cluster machine state for the serial driver. `lane` is `None`
/// after a contained build- or epoch-panic (the machine may be
/// mid-mutation; it is never touched again).
struct ClusterLane {
    lane: Option<(MultiMachine, Vec<CompiledKernel>)>,
    failure: Option<ClusterFailure>,
    done: bool,
}

fn build_cluster(
    cfg: &MachineConfig,
    shards: &[(CompiledKernel, Kernel)],
) -> (MultiMachine, Vec<CompiledKernel>) {
    let m = MultiMachine::for_kernels(cfg.clone(), shards);
    let cks = shards.iter().map(|(ck, _)| ck.clone()).collect();
    (m, cks)
}

/// Runs a clustered machine: cluster `c` is a [`MultiMachine`] over
/// `shards[c]` (one `(CompiledKernel, Kernel)` per core) built from
/// `cfg`, with its own backside. Dispatches to the epoch-synchronized
/// threaded driver, or the bit-identical serial one when
/// [`ClusterConfig::serial_clusters`] is set (a single cluster always
/// runs serially — there is nothing to overlap). `fallbacks` is the
/// plan's [`cross_cluster_fallbacks`] count, carried into the report.
///
/// On failure — a cluster's simulation error, a contained host-thread
/// panic, or the epoch watchdog — every other cluster still runs its
/// course, then a structured [`ClusterError`] is returned naming every
/// failed cluster and carrying the completed clusters' reports. The
/// same answer regardless of host thread timing (threaded and serial
/// drivers fail identically; the containment tests pin this).
pub fn run_clusters(
    cfg: &MachineConfig,
    cluster: &ClusterConfig,
    shards: &[Vec<(CompiledKernel, Kernel)>],
    fallbacks: u64,
) -> Result<ClusterRunReport, ClusterError> {
    let topo = cluster.topology;
    assert_eq!(shards.len(), topo.clusters, "one shard list per cluster");
    for (c, s) in shards.iter().enumerate() {
        assert_eq!(
            s.len(),
            topo.cores_per_cluster,
            "cluster {c}: one shard per core"
        );
    }
    let epoch_len = cluster.epoch_len();
    let max_epochs = cluster.effective_max_epochs(cfg);
    let inject_panic = cluster.inject_panic;
    let results = if cluster.serial_clusters || topo.clusters == 1 {
        run_serial(cfg, shards, epoch_len, max_epochs, inject_panic)
    } else {
        run_threaded(cfg, shards, epoch_len, max_epochs, inject_panic)
    };
    let mut failures = Vec::new();
    let mut completed = Vec::new();
    let mut epochs = 0u64;
    for (c, r) in results.into_iter().enumerate() {
        match r {
            Ok((report, e)) => {
                epochs = epochs.max(e);
                completed.push((c, report));
            }
            Err(f) => failures.push((c, f)),
        }
    }
    if !failures.is_empty() {
        return Err(ClusterError {
            failures,
            completed,
        });
    }
    let per_cluster: Vec<MultiRunReport> = completed.into_iter().map(|(_, r)| r).collect();
    let makespan = per_cluster.iter().map(|r| r.makespan).max().unwrap_or(0);
    Ok(ClusterRunReport {
        per_cluster,
        makespan,
        epochs,
        epoch_cycles: epoch_len,
        cross_cluster_fallbacks: fallbacks,
    })
}

/// The serial oracle: all clusters on the calling thread, advanced
/// round-robin one epoch at a time — the exact `run_until` call
/// sequence per cluster that each thread of [`run_threaded`] performs,
/// with the same panic containment, injection point and watchdog, so
/// the two drivers fail identically too.
fn run_serial(
    cfg: &MachineConfig,
    shards: &[Vec<(CompiledKernel, Kernel)>],
    epoch_len: u64,
    max_epochs: u64,
    inject_panic: Option<usize>,
) -> Vec<Result<(MultiRunReport, u64), ClusterFailure>> {
    let mut lanes: Vec<ClusterLane> = shards
        .iter()
        .map(|s| {
            let (lane, failure) = match catch_unwind(AssertUnwindSafe(|| build_cluster(cfg, s))) {
                Ok(l) => (Some(l), None),
                Err(p) => (None, Some(ClusterFailure::Panic(panic_message(p)))),
            };
            let done = failure.is_some();
            ClusterLane {
                lane,
                failure,
                done,
            }
        })
        .collect();
    let mut epoch_end = epoch_len;
    let mut epochs = 0u64;
    loop {
        for (c, l) in lanes.iter_mut().enumerate() {
            if l.done {
                continue;
            }
            let (m, _) = l.lane.as_mut().expect("running lane has a machine");
            let inject = inject_panic == Some(c) && epochs == 0;
            match catch_unwind(AssertUnwindSafe(|| {
                if inject {
                    panic!("injected cluster-thread panic (cluster {c})");
                }
                m.run_until(epoch_end)
            })) {
                Err(p) => {
                    l.failure = Some(ClusterFailure::Panic(panic_message(p)));
                    l.lane = None;
                    l.done = true;
                }
                Ok(Err(e)) => {
                    l.failure = Some(ClusterFailure::Sim(e));
                    l.done = true;
                }
                Ok(Ok(())) => {
                    if m.all_halted() {
                        l.done = true;
                    }
                }
            }
        }
        epochs += 1;
        for l in lanes.iter_mut().filter(|l| !l.done) {
            if epochs >= max_epochs {
                l.failure = Some(ClusterFailure::Watchdog { epochs });
                l.done = true;
            }
        }
        if lanes.iter().all(|l| l.done) {
            break;
        }
        epoch_end += epoch_len;
    }
    lanes
        .into_iter()
        .map(|l| match l.failure {
            Some(f) => Err(f),
            None => {
                let (m, cks) = l.lane.as_ref().expect("completed lane has a machine");
                catch_unwind(AssertUnwindSafe(|| MultiRunReport::collect(m, cks)))
                    .map(|r| (r, epochs))
                    .map_err(|p| ClusterFailure::Panic(panic_message(p)))
            }
        })
        .collect()
}

/// The threaded driver: one scoped `std::thread` per cluster, epochs
/// synchronized with a double barrier (see the module docs for why two
/// waits make the done decision consistent without a race).
///
/// Every fallible step — machine build, each epoch's `run_until`, the
/// report collection — runs under `catch_unwind`: a panicking cluster
/// marks itself done and keeps joining the barriers so no peer ever
/// blocks on a vanished thread, and the epoch watchdog bounds the loop
/// even if a cluster wedges without erroring.
fn run_threaded(
    cfg: &MachineConfig,
    shards: &[Vec<(CompiledKernel, Kernel)>],
    epoch_len: u64,
    max_epochs: u64,
    inject_panic: Option<usize>,
) -> Vec<Result<(MultiRunReport, u64), ClusterFailure>> {
    let n = shards.len();
    let barrier = Barrier::new(n);
    let done: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = shards
            .iter()
            .enumerate()
            .map(|(c, cluster_shards)| {
                let barrier = &barrier;
                let done = &done;
                s.spawn(move || -> Result<(MultiRunReport, u64), ClusterFailure> {
                    // Machines hold `Rc` backside handles, so each is
                    // built — and its report collected — inside its own
                    // thread; only plain data crosses the boundary.
                    let (mut lane, mut failure) =
                        match catch_unwind(AssertUnwindSafe(|| build_cluster(cfg, cluster_shards)))
                        {
                            Ok(l) => (Some(l), None),
                            Err(p) => (None, Some(ClusterFailure::Panic(panic_message(p)))),
                        };
                    let mut finished = failure.is_some();
                    if finished {
                        done[c].store(true, Ordering::SeqCst);
                    }
                    let mut epoch_end = epoch_len;
                    let mut epochs = 0u64;
                    loop {
                        if !finished {
                            let (m, _) = lane.as_mut().expect("running lane has a machine");
                            let inject = inject_panic == Some(c) && epochs == 0;
                            match catch_unwind(AssertUnwindSafe(|| {
                                if inject {
                                    panic!("injected cluster-thread panic (cluster {c})");
                                }
                                m.run_until(epoch_end)
                            })) {
                                Err(p) => {
                                    failure = Some(ClusterFailure::Panic(panic_message(p)));
                                    lane = None;
                                    finished = true;
                                }
                                Ok(Err(e)) => {
                                    failure = Some(ClusterFailure::Sim(e));
                                    finished = true;
                                }
                                Ok(Ok(())) => {
                                    if m.all_halted() {
                                        finished = true;
                                    }
                                }
                            }
                        }
                        epochs += 1;
                        if !finished && epochs >= max_epochs {
                            failure = Some(ClusterFailure::Watchdog { epochs });
                            finished = true;
                        }
                        if finished {
                            done[c].store(true, Ordering::SeqCst);
                        }
                        barrier.wait();
                        // No thread stores a flag between the barriers,
                        // so every thread computes the same answer.
                        let all_done = done.iter().all(|d| d.load(Ordering::SeqCst));
                        barrier.wait();
                        if all_done {
                            break;
                        }
                        epoch_end += epoch_len;
                    }
                    match failure {
                        Some(f) => Err(f),
                        None => {
                            let (m, cks) = lane.as_ref().expect("completed lane has a machine");
                            catch_unwind(AssertUnwindSafe(|| MultiRunReport::collect(m, cks)))
                                .map(|r| (r, epochs))
                                .map_err(|p| ClusterFailure::Panic(panic_message(p)))
                        }
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|p| Err(ClusterFailure::Panic(panic_message(p))))
            })
            .collect()
    })
}
