//! NAS-signature kernels (§4.2, Table 3).
//!
//! Each generator reproduces the *memory-reference signature* the paper
//! reports for the corresponding NAS benchmark — the counts below come
//! straight from Table 3 and the §4.2 prose:
//!
//! | kernel | refs | guarded | notes |
//! |--------|------|---------|-------|
//! | CG | 7  | 1 (read)        | indirect gather with high reuse on the critical path |
//! | EP | 20 | 1 (write, double store) | 3 strided + 16 locals, compute-bound, tiny footprint |
//! | FT | 34 | 4 (2 rd + 2 wr double stores) | many strided f64 streams, complex FP |
//! | IS | 5  | 2 (writes, double stores) | trivial computation, scattered histograms |
//! | MG | 60 | 1 (read)        | wide stencils: many concurrent streams |
//! | SP | 497 (across 25 loops) | 0 | hundreds of strided streams thrash the prefetcher tables |
//!
//! MG's guarded gather indexes into a *mapped* array with indices that
//! stay inside the current window, so its directory lookups actually
//! *hit* and are diverted to the LM — the Figure 5 `gld17H` path — while
//! CG/FT/IS guards miss and fall through to the caches (`gld17M`).

use hsim_compiler::{Expr, Kernel, KernelBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Workload size: `Test` keeps runs small for unit/integration tests,
/// `Paper` is the benchmark-harness size.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// A few LM windows per array: seconds of simulation.
    Test,
    /// The figure-regeneration size.
    Paper,
}

impl Scale {
    /// Picks the value for this scale (`Test` → `test`, `Paper` →
    /// `paper`) — the idiom every size-parameterized generator uses.
    pub fn pick(self, test: u64, paper: u64) -> u64 {
        match self {
            Scale::Test => test,
            Scale::Paper => paper,
        }
    }
}

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

fn rand_f64s(rng: &mut StdRng, n: u64) -> Vec<f64> {
    (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

fn rand_idx(rng: &mut StdRng, n: u64, bound: u64) -> Vec<i64> {
    (0..n).map(|_| rng.gen_range(0..bound as i64)).collect()
}

/// NAS IS key distribution: the average of four uniforms (approximately
/// Gaussian), concentrating accesses on the middle buckets.
fn nas_is_keys(rng: &mut StdRng, n: u64, bound: u64) -> Vec<i64> {
    (0..n)
        .map(|_| {
            let s: i64 = (0..4).map(|_| rng.gen_range(0..bound as i64)).sum();
            s / 4
        })
        .collect()
}

/// CG: sparse-matrix/vector-flavored kernel. 7 references, 1 potentially
/// incoherent read (`x[col[i]]` — the compiler cannot prove the gathered
/// vector is not the LM-mapped `p`). `x` is small and heavily reused: in
/// the hybrid system it stays L1-resident because the strided streams
/// live in the LM; in the cache-based system the streams keep evicting
/// it.
pub fn cg(scale: Scale) -> Kernel {
    let n = scale.pick(6 * 1024, 160 * 1024);
    // The gathered vector exceeds the 32 KB L1; the column indices have
    // banded locality (sparse matrices cluster nonzeros near the
    // diagonal), so the *hot* subset fits an L1 that is not polluted by
    // the strided streams — the hybrid system's advantage in the paper.
    let x_len: u64 = 12 * 1024;
    let mut r = rng(0xC6);
    let mut kb = KernelBuilder::new("CG");
    let a = kb.array_f64_init("a", &rand_f64s(&mut r, n));
    let band = 3 * 1024i64;
    let cols: Vec<i64> = (0..n)
        .map(|i| {
            let center = (i as i64 * x_len as i64) / n as i64;
            let off = r.gen_range(-band / 2..band / 2);
            (center + off).rem_euclid(x_len as i64)
        })
        .collect();
    let col = kb.array_i64_init("col", &cols);
    let p = kb.array_f64_init("p", &rand_f64s(&mut r, n));
    let q = kb.array_f64_init("q", &rand_f64s(&mut r, n));
    let z = kb.array_f64_init("z", &rand_f64s(&mut r, n));
    let rr = kb.array_f64_init("r", &rand_f64s(&mut r, n));
    let x = kb.array_f64_init("x", &rand_f64s(&mut r, x_len));
    kb.begin_loop(n);
    let ra = kb.ref_affine(a, 1, 0); // strided
    let rcol = kb.ref_affine(col, 1, 0); // strided
    let rx = kb.ref_indirect(x, rcol, 0); // potentially incoherent read
    let rp = kb.ref_affine(p, 1, 0); // strided, written
    let rq = kb.ref_affine(q, 1, 0); // strided, written
    let rz = kb.ref_affine(z, 1, 0); // strided, written
    let rrr = kb.ref_affine(rr, 1, 0); // strided
                                       // p[i] += a[i] * x[col[i]]; q[i] += p[i]; z[i] -= r[i]
    kb.stmt(
        rp,
        Expr::add(Expr::Ref(rp), Expr::mul(Expr::Ref(ra), Expr::Ref(rx))),
    );
    kb.stmt(rq, Expr::add(Expr::Ref(rq), Expr::Ref(rp)));
    kb.stmt(rz, Expr::sub(Expr::Ref(rz), Expr::Ref(rrr)));
    kb.alias_mut().may_alias(x, p);
    kb.end_loop();
    kb.build().expect("CG kernel")
}

/// EP: embarrassingly-parallel random-number kernel. 20 references:
/// 3 strided, 16 loop-invariant locals, and 1 potentially incoherent
/// write (double store). Compute-bound with a tiny footprint — the paper
/// reports no hybrid speedup and zero double-store overhead because both
/// stores always issue in the same cycle.
pub fn ep(scale: Scale) -> Kernel {
    let n = scale.pick(4 * 1024, 48 * 1024);
    let mut r = rng(0xE9);
    let mut kb = KernelBuilder::new("EP");
    let x = kb.array_f64_init("x", &rand_f64s(&mut r, n));
    let y = kb.array_f64_init("y", &rand_f64s(&mut r, n));
    let t = kb.array_f64_init("t", &rand_f64s(&mut r, n + 1));
    let w = kb.array_f64_init("w", &rand_f64s(&mut r, n + 1));
    let locals = kb.array_f64_init("locals", &rand_f64s(&mut r, 16));
    kb.begin_loop(n);
    let rx = kb.ref_affine(x, 1, 0);
    let ry = kb.ref_affine(y, 1, 0);
    let rt = kb.ref_affine(t, 1, 0);
    let rw = kb.ref_affine(w, 1, 1);
    kb.force_incoherent(rw); // the 1 potentially incoherent write
    kb.no_map(w); // w is only touched through the unpredictable write
    let rl: Vec<_> = (0..16).map(|k| kb.ref_affine(locals, 0, k)).collect();
    // Heavy FP work over locals (8 accumulators updated from 8 constants
    // and the strided streams).
    for k in 0..8 {
        kb.stmt(
            rl[k],
            Expr::add(
                Expr::Ref(rl[k]),
                Expr::mul(
                    Expr::mul(Expr::Ref(rl[k + 8]), Expr::Ref(rx)),
                    Expr::add(Expr::Ref(ry), Expr::ConstF(0.5 + k as f64)),
                ),
            ),
        );
    }
    // The potentially incoherent write and a strided read of t.
    kb.stmt(
        rw,
        Expr::add(Expr::Ref(rt), Expr::mul(Expr::Ref(rx), Expr::Ref(ry))),
    );
    kb.end_loop();
    kb.build().expect("EP kernel")
}

/// FT: FFT-flavored kernel. 34 references: 30 strided f64/i64 streams
/// (28 value + 2 index), 2 potentially incoherent reads and 2
/// potentially incoherent writes (double stores). Complex floating-point
/// work keeps the double-store overhead small (paper: 1.03%).
pub fn ft(scale: Scale) -> Kernel {
    let n = scale.pick(4 * 1024, 20 * 1024);
    let sc_len = 4096;
    let mut r = rng(0xF7);
    let mut kb = KernelBuilder::new("FT");
    // 14 paired re/im streams.
    let streams: Vec<_> = (0..14)
        .map(|k| kb.array_f64_init(&format!("s{k}"), &rand_f64s(&mut r, n + 1)))
        .collect();
    let idx1 = kb.array_i64_init("idx1", &rand_idx(&mut r, n, sc_len));
    let idx2 = kb.array_i64_init("idx2", &rand_idx(&mut r, n, sc_len));
    let tw1 = kb.array_f64_init("tw1", &rand_f64s(&mut r, sc_len));
    let tw2 = kb.array_f64_init("tw2", &rand_f64s(&mut r, sc_len));
    let out1 = kb.array_f64_init("out1", &rand_f64s(&mut r, sc_len));
    let out2 = kb.array_f64_init("out2", &rand_f64s(&mut r, sc_len));
    kb.begin_loop(n);
    let rs: Vec<_> = streams.iter().map(|s| kb.ref_affine(*s, 1, 0)).collect(); // 14
    let rs1: Vec<_> = streams
        .iter()
        .take(14)
        .map(|s| kb.ref_affine(*s, 1, 1))
        .collect(); // 14 more strided refs (offset 1): total 28 value streams
    let ridx1 = kb.ref_affine(idx1, 1, 0); // strided index
    let ridx2 = kb.ref_affine(idx2, 1, 0); // strided index
    let rtw1 = kb.ref_indirect(tw1, ridx1, 0); // pot. incoherent read
    let rtw2 = kb.ref_indirect(tw2, ridx2, 0); // pot. incoherent read
    let rout1 = kb.ref_indirect(out1, ridx1, 0); // pot. incoherent write
    let rout2 = kb.ref_indirect(out2, ridx2, 0); // pot. incoherent write
                                                 // Butterfly-flavored updates: s_k[i] = s_k[i+1]*tw + s_{k+1}[i].
    for k in 0..7 {
        kb.stmt(
            rs[k],
            Expr::add(
                Expr::mul(Expr::Ref(rs1[k]), Expr::Ref(rtw1)),
                Expr::Ref(rs[(k + 1) % 14]),
            ),
        );
        kb.stmt(
            rs[k + 7],
            Expr::sub(
                Expr::mul(Expr::Ref(rs1[k + 7]), Expr::Ref(rtw2)),
                Expr::Ref(rs[(k + 8) % 14]),
            ),
        );
    }
    // Scatter accumulation through the potentially incoherent writes.
    kb.stmt(rout1, Expr::add(Expr::Ref(rout1), Expr::Ref(rs[0])));
    kb.stmt(rout2, Expr::sub(Expr::Ref(rout2), Expr::Ref(rs[7])));
    kb.alias_mut().may_alias(tw1, streams[0]);
    kb.alias_mut().may_alias(tw2, streams[7]);
    kb.alias_mut().may_alias(out1, streams[1]);
    kb.alias_mut().may_alias(out2, streams[8]);
    kb.end_loop();
    kb.build().expect("FT kernel")
}

/// IS: integer-sort histogram kernel. 5 references: 2 strided key
/// streams, 1 strided rank output, and 2 potentially incoherent
/// read-modify-writes (double stores). The computation is trivial, so the
/// double store's extra instructions are the paper's visible IS overhead
/// (0.44% time, ~5% energy).
pub fn is(scale: Scale) -> Kernel {
    let n = scale.pick(8 * 1024, 192 * 1024);
    // Two histograms of 512 KB: together they exceed the L2. The hot
    // (Gaussian-concentrated) region fits the hybrid system's unpolluted
    // L2; in the cache-based system the write-through rank stream and the
    // key streams keep flushing it to the L3.
    let buckets = 64 * 1024;
    let mut r = rng(0x15);
    let mut kb = KernelBuilder::new("IS");
    let key1 = kb.array_i64_init("key1", &nas_is_keys(&mut r, n, buckets));
    let key2 = kb.array_i64_init("key2", &nas_is_keys(&mut r, n, buckets));
    let rank = kb.array_i64("rank", n);
    let h = kb.array_i64("h", buckets);
    kb.begin_loop(n);
    let rk1 = kb.ref_affine(key1, 1, 0);
    let rk2 = kb.ref_affine(key2, 1, 0);
    let rrank = kb.ref_affine(rank, 1, 0);
    let rh1 = kb.ref_indirect(h, rk1, 0); // pot. incoherent rmw
    let rh2 = kb.ref_indirect(h, rk2, 0); // pot. incoherent rmw
    kb.stmt(rh1, Expr::add(Expr::Ref(rh1), Expr::ConstI(1)));
    kb.stmt(rh2, Expr::add(Expr::Ref(rh2), Expr::ConstI(1)));
    kb.stmt(rrank, Expr::add(Expr::Ref(rk1), Expr::Ref(rk2)));
    kb.alias_mut().may_alias(h, rank);
    kb.end_loop();
    kb.build().expect("IS kernel")
}

/// MG: multigrid-stencil kernel. 60 references in one loop — wide
/// stencils over many arrays (the stream count pressures the cache-based
/// prefetcher's history table) plus 1 potentially incoherent read whose
/// indices stay inside the current window: its directory lookups *hit*
/// and are diverted to the LM (Figure 5's `gld17H` path).
pub fn mg(scale: Scale) -> Kernel {
    let n = scale.pick(4 * 1024, 16 * 1024);
    let mut r = rng(0x36);
    let mut kb = KernelBuilder::new("MG");
    // 19 stencil arrays x 3 offsets = 57 refs, + gather index + gather +
    // coefficient = 60.
    let arrays: Vec<_> = (0..19)
        .map(|k| kb.array_f64_init(&format!("v{k}"), &rand_f64s(&mut r, n + 2)))
        .collect();
    // Window-local gather indices: g[i] = i rounded down to a multiple of
    // 64 — always inside the current LM window (buf >= 64 elements).
    let gidx: Vec<i64> = (0..n as i64).map(|i| i & !63).collect();
    let gather_idx = kb.array_i64_init("gidx", &gidx);
    let coef = kb.array_f64_init("coef", &rand_f64s(&mut r, n));
    kb.begin_loop(n);
    let mut refs = Vec::new();
    for a in &arrays {
        let r0 = kb.ref_affine(*a, 1, 0);
        let r1 = kb.ref_affine(*a, 1, 1);
        let r2 = kb.ref_affine(*a, 1, 2);
        refs.push((r0, r1, r2));
    }
    let rgi = kb.ref_affine(gather_idx, 1, 0);
    let rcoef = kb.ref_affine(coef, 1, 0);
    // The gather targets v0 — the same array that is regularly mapped —
    // so classification is Must-alias: potentially incoherent.
    let rgather = kb.ref_indirect(arrays[0], rgi, 0);
    // Stencil updates: v_k[i] = c*(v_k[i] + v_k[i+1] + v_k[i+2]) + v_{k+1}[i+1]
    for k in 0..18 {
        let (a0, a1, a2) = refs[k];
        let (_, b1, _) = refs[k + 1];
        kb.stmt(
            a0,
            Expr::add(
                Expr::mul(
                    Expr::Ref(rcoef),
                    Expr::add(Expr::add(Expr::Ref(a0), Expr::Ref(a1)), Expr::Ref(a2)),
                ),
                Expr::Ref(b1),
            ),
        );
    }
    // Use the guarded gather in the last statement.
    let (l0, _, _) = refs[18];
    kb.stmt(l0, Expr::add(Expr::Ref(l0), Expr::Ref(rgather)));
    kb.end_loop();
    kb.build().expect("MG kernel")
}

/// SP: scalar-pentadiagonal kernel. 497 strided references spread over
/// 25 loops (~20 per loop, all unit-stride, offset 0), zero potentially
/// incoherent references — Table 3's `0/497 (0%)` row. The sheer stream
/// count is what collapses the cache-based prefetcher.
pub fn sp(scale: Scale) -> Kernel {
    let n = scale.pick(2 * 1024, 6 * 1024);
    let mut r = rng(0x59);
    let mut kb = KernelBuilder::new("SP");
    // A pool of arrays reused across loops (large enough that the
    // Paper-scale footprint exceeds the 4 MB L3).
    let pool: Vec<_> = (0..60)
        .map(|k| kb.array_f64_init(&format!("w{k}"), &rand_f64s(&mut r, n)))
        .collect();
    let mut total_refs = 0usize;
    for l in 0..25 {
        // 20 refs per loop for the first 24 loops, 17 in the last: 497.
        let refs_this_loop = if l == 24 { 17 } else { 20 };
        kb.begin_loop(n);
        let mut rs = Vec::new();
        for k in 0..refs_this_loop {
            let a = pool[(l + k) % pool.len()];
            rs.push(kb.ref_affine(a, 1, 0));
        }
        total_refs += refs_this_loop;
        // Chained updates: w_k[i] = w_k[i]*c + w_{k+1}[i].
        for k in 0..refs_this_loop - 1 {
            kb.stmt(
                rs[k],
                Expr::add(
                    Expr::mul(Expr::Ref(rs[k]), Expr::ConstF(0.5 + k as f64 * 0.01)),
                    Expr::Ref(rs[k + 1]),
                ),
            );
        }
        kb.end_loop();
    }
    assert_eq!(total_refs, 497);
    kb.build().expect("SP kernel")
}

/// All six kernels, in the paper's order.
pub fn all_nas(scale: Scale) -> Vec<Kernel> {
    vec![
        cg(scale),
        ep(scale),
        ft(scale),
        is(scale),
        mg(scale),
        sp(scale),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsim_compiler::{classify_loop, interpret, RefClass};
    use hsim_isa::memmap::LM_SIZE;

    fn counts(k: &Kernel) -> (usize, usize, usize) {
        let mut total = 0;
        let mut guarded = 0;
        let mut double = 0;
        for l in &k.loops {
            let plan = classify_loop(k, l, LM_SIZE, 32);
            total += plan.classes.len();
            guarded += plan.guarded_refs();
            double += plan.double_stores.len();
        }
        (total, guarded, double)
    }

    #[test]
    fn table3_reference_signatures() {
        // (name, total refs, guarded, double stores) from Table 3 + §4.2.
        for (k, total, guarded, double) in [
            (cg(Scale::Test), 7, 1, 0),
            (ep(Scale::Test), 20, 1, 1),
            (ft(Scale::Test), 34, 4, 2),
            (is(Scale::Test), 5, 2, 2),
            (mg(Scale::Test), 60, 1, 0),
            (sp(Scale::Test), 497, 0, 0),
        ] {
            let (t, g, d) = counts(&k);
            assert_eq!((t, g, d), (total, guarded, double), "kernel {}", k.name);
        }
    }

    #[test]
    fn ep_has_16_locals_and_3_plus_1_strided() {
        let k = ep(Scale::Test);
        let plan = classify_loop(&k, &k.loops[0], LM_SIZE, 32);
        let locals = plan
            .classes
            .iter()
            .filter(|c| **c == RefClass::Local)
            .count();
        assert_eq!(locals, 16);
        let strided = plan
            .classes
            .iter()
            .filter(|c| matches!(c, RefClass::Regular | RefClass::RegularUnmapped))
            .count();
        assert_eq!(strided, 3);
    }

    #[test]
    fn all_kernels_interpret_cleanly() {
        for k in all_nas(Scale::Test) {
            interpret(&k).unwrap_or_else(|e| panic!("{}: {e}", k.name));
        }
    }

    #[test]
    fn mg_gather_indices_stay_in_window() {
        let k = mg(Scale::Test);
        // gidx[i] = i & !63: for any window size that is a multiple of 64
        // elements, the gather lands in the same window as i.
        let plan = classify_loop(&k, &k.loops[0], LM_SIZE, 32);
        assert!(plan.chunk_elems.is_multiple_of(64));
        assert!(plan.guarded_refs() == 1);
    }

    #[test]
    fn sp_is_spotless() {
        let k = sp(Scale::Test);
        for l in &k.loops {
            let plan = classify_loop(&k, l, LM_SIZE, 32);
            assert_eq!(plan.guarded_refs(), 0);
            assert_eq!(plan.tail_span, 0, "SP must not need tail guards");
        }
    }

    #[test]
    fn deterministic_generation() {
        let a = cg(Scale::Test);
        let b = cg(Scale::Test);
        assert_eq!(a.init, b.init);
    }
}
