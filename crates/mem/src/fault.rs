//! Deterministic fault injection for the memory fabric.
//!
//! A seeded [`FaultConfig`] drives three recoverable fault sites:
//! transient DRAM read errors (ECC retry, `backing.rs`), DMA transfer
//! timeouts (exponential backoff, `dma.rs`) and directory/bank message
//! NACKs under port contention (`hierarchy.rs`). Each site owns a
//! [`FaultRoller`] — a **counter-based** xorshift generator keyed on
//! `(seed, site, instance)` — so whether the *k*-th event at a site
//! faults depends only on the seed and on `k`, never on host thread
//! scheduling, wall-clock time or allocation order. Replaying a run
//! with the same seed replays the same faults.
//!
//! ## Invariants
//!
//! * **Timing-only** — injected faults delay accesses and bump retry
//!   counters; they never touch architectural state. Final memory
//!   images, kernel results and coherence-tracker cleanliness are
//!   identical at any fault rate (pinned by the `fault_injection`
//!   proptests).
//! * **Zero-rate transparency** — a roller built from a zero rate
//!   short-circuits before drawing: [`FaultConfig::none`] is
//!   bit-identical to a machine with no fault plan at all, timing and
//!   statistics included.
//! * **Bounded recovery** — every retry loop is capped at
//!   [`FaultConfig::max_retries`]; a site that keeps faulting past the
//!   cap escalates to a structured [`FaultEscalation`] (counted, never
//!   a hang), which is how livelock is ruled out even at rate 1.0.

/// The three recoverable fault sites of the memory fabric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultSite {
    /// A transient DRAM read error: the column access replays with an
    /// ECC-retry penalty (`DramStats::ecc_retries`).
    DramRead,
    /// A DMA transfer timeout: the transfer re-streams after an
    /// exponential backoff (`DmaStats::retries`), escalating after
    /// `max_retries` (`DmaStats::escalations`).
    DmaTimeout,
    /// A directory/bank message NACK under L3 port contention: the
    /// request re-arbitrates after a bounded backoff
    /// (`CoherenceStats::dir_nacks`), with the retry cap as the
    /// livelock watchdog.
    DirNack,
}

impl FaultSite {
    /// Per-site key salt: distinct sites draw from unrelated streams
    /// even under one seed.
    fn salt(self) -> u64 {
        match self {
            FaultSite::DramRead => 0x85EB_CA6B_27D4_EB2F,
            FaultSite::DmaTimeout => 0xC2B2_AE3D_27D4_EB4F,
            FaultSite::DirNack => 0x2545_F491_4F6C_DD1D,
        }
    }
}

/// A seeded fault-injection plan, carried by `MemConfig::fault` and
/// threaded to every site of the memory fabric.
///
/// Rates are probabilities in `[0, 1]` per *event* (per DRAM read, per
/// DMA command, per contended port arbitration). The plan is pure
/// configuration: two machines built from equal plans inject equal
/// fault sequences.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultConfig {
    /// Seed of every site's counter-based generator.
    pub seed: u64,
    /// Probability that a DRAM line read takes a transient error and
    /// pays an ECC retry.
    pub dram_read_error_rate: f64,
    /// Probability that a DMA command times out and re-streams after a
    /// backoff.
    pub dma_timeout_rate: f64,
    /// Probability that a *contended* directory/bank port arbitration
    /// is NACKed and re-arbitrates after a backoff.
    pub dir_nack_rate: f64,
    /// Retry budget per faulting event; past it the site escalates
    /// (DMA) or the livelock watchdog stops injecting (NACKs).
    pub max_retries: u32,
    /// Base backoff delay in cycles; retry `k` (0-based) waits
    /// `backoff_base << k` (see [`backoff_delay`]).
    pub backoff_base: u64,
}

impl FaultConfig {
    /// The empty plan: all rates zero. Bit-identical to running with no
    /// plan at all.
    pub fn none() -> Self {
        FaultConfig {
            seed: 0,
            dram_read_error_rate: 0.0,
            dma_timeout_rate: 0.0,
            dir_nack_rate: 0.0,
            max_retries: 4,
            backoff_base: 8,
        }
    }

    /// A plan injecting at one uniform `rate` across all three sites.
    pub fn uniform(seed: u64, rate: f64) -> Self {
        FaultConfig {
            seed,
            dram_read_error_rate: rate,
            dma_timeout_rate: rate,
            dir_nack_rate: rate,
            ..Self::none()
        }
    }

    /// Whether the plan injects nothing (every rate is zero).
    pub fn is_none(&self) -> bool {
        self.dram_read_error_rate == 0.0
            && self.dma_timeout_rate == 0.0
            && self.dir_nack_rate == 0.0
    }

    /// The injection rate configured for `site`.
    pub fn rate_of(&self, site: FaultSite) -> f64 {
        match site {
            FaultSite::DramRead => self.dram_read_error_rate,
            FaultSite::DmaTimeout => self.dma_timeout_rate,
            FaultSite::DirNack => self.dir_nack_rate,
        }
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self::none()
    }
}

/// A structured record of a fault that exhausted its retry budget —
/// the escalation path out of a retry loop. Escalations are counted
/// and surfaced in reports; the underlying operation still completes
/// (faults are timing-only), so an escalation is a diagnosis, never a
/// wedge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEscalation {
    /// The site that escalated.
    pub site: FaultSite,
    /// Retries spent before escalating (`max_retries`).
    pub attempts: u32,
    /// Simulated cycle of the escalation.
    pub cycle: u64,
}

/// Exponential backoff delay for retry `attempt` (0-based):
/// `base << attempt`, saturating so pathological retry budgets cannot
/// wrap.
pub fn backoff_delay(base: u64, attempt: u32) -> u64 {
    base.saturating_mul(1u64 << attempt.min(32))
}

/// One fault site's deterministic event roller.
///
/// `roll()` is a pure function of `(seed, site, instance, counter)`:
/// the counter advances once per draw, and the draw is an xorshift mix
/// of the keyed counter compared against the rate threshold. Zero-rate
/// rollers return `false` without drawing (or advancing), so an empty
/// plan perturbs nothing.
pub struct FaultRoller {
    key: u64,
    /// `rate` scaled to `[0, 2^64]`; 0 disables the site, `2^64`
    /// (rate ≥ 1.0) fires on every draw.
    threshold: u128,
    counter: u64,
}

impl FaultRoller {
    /// Builds the roller for `site` under `cfg`. `instance`
    /// distinguishes replicated owners of one site (DRAM channel index,
    /// tile id) so they draw from independent streams.
    pub fn new(cfg: &FaultConfig, site: FaultSite, instance: u64) -> Self {
        let rate = cfg.rate_of(site).clamp(0.0, 1.0);
        let threshold = if rate <= 0.0 {
            0
        } else {
            // 2^64 * rate, exact at the endpoints: rate 1.0 always
            // fires (the escalation paths are exercised, not hung).
            (rate * 18_446_744_073_709_551_616.0) as u128
        };
        FaultRoller {
            key: mix(cfg.seed ^ site.salt() ^ mix(instance.wrapping_mul(0x9E37_79B9_7F4A_7C15))),
            threshold,
            counter: 0,
        }
    }

    /// A roller that never fires (the no-plan default).
    pub fn disabled() -> Self {
        FaultRoller {
            key: 0,
            threshold: 0,
            counter: 0,
        }
    }

    /// Whether this site can ever inject.
    pub fn enabled(&self) -> bool {
        self.threshold != 0
    }

    /// Draws the next event: `true` injects a fault. Deterministic in
    /// the draw index alone.
    #[inline]
    pub fn roll(&mut self) -> bool {
        if self.threshold == 0 {
            return false;
        }
        let c = self.counter;
        self.counter += 1;
        (mix(self.key ^ c.wrapping_mul(0x9E37_79B9_7F4A_7C15)) as u128) < self.threshold
    }
}

/// The xorshift64* mixer behind every draw: full-period xorshift step
/// plus a multiplicative finalizer, seeded away from the zero fixed
/// point.
#[inline]
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_plans_replay_equal_sequences() {
        let cfg = FaultConfig::uniform(42, 0.3);
        let mut a = FaultRoller::new(&cfg, FaultSite::DramRead, 0);
        let mut b = FaultRoller::new(&cfg, FaultSite::DramRead, 0);
        let sa: Vec<bool> = (0..256).map(|_| a.roll()).collect();
        let sb: Vec<bool> = (0..256).map(|_| b.roll()).collect();
        assert_eq!(sa, sb);
        assert!(sa.iter().any(|&f| f), "rate 0.3 fires somewhere in 256");
        assert!(!sa.iter().all(|&f| f), "rate 0.3 is not rate 1.0");
    }

    #[test]
    fn sites_and_instances_draw_independent_streams() {
        let cfg = FaultConfig::uniform(7, 0.5);
        let seq = |site, instance| {
            let mut r = FaultRoller::new(&cfg, site, instance);
            (0..128).map(|_| r.roll()).collect::<Vec<bool>>()
        };
        assert_ne!(
            seq(FaultSite::DramRead, 0),
            seq(FaultSite::DmaTimeout, 0),
            "sites must not alias"
        );
        assert_ne!(
            seq(FaultSite::DramRead, 0),
            seq(FaultSite::DramRead, 1),
            "instances must not alias"
        );
    }

    #[test]
    fn zero_rate_never_draws() {
        let mut r = FaultRoller::new(&FaultConfig::none(), FaultSite::DirNack, 0);
        assert!(!r.enabled());
        for _ in 0..64 {
            assert!(!r.roll());
        }
        assert_eq!(r.counter, 0, "zero-rate rollers must not even count");
    }

    #[test]
    fn rate_one_always_fires() {
        let mut r = FaultRoller::new(&FaultConfig::uniform(1, 1.0), FaultSite::DmaTimeout, 3);
        for _ in 0..64 {
            assert!(r.roll(), "rate 1.0 fires on every draw");
        }
    }

    #[test]
    fn seeds_change_the_stream() {
        let seq = |seed| {
            let mut r = FaultRoller::new(&FaultConfig::uniform(seed, 0.5), FaultSite::DirNack, 0);
            (0..128).map(|_| r.roll()).collect::<Vec<bool>>()
        };
        assert_ne!(seq(1), seq(2));
    }

    #[test]
    fn backoff_is_exponential_and_saturates() {
        assert_eq!(backoff_delay(8, 0), 8);
        assert_eq!(backoff_delay(8, 1), 16);
        assert_eq!(backoff_delay(8, 4), 128);
        assert_eq!(backoff_delay(u64::MAX / 2, 40), u64::MAX);
        assert_eq!(backoff_delay(0, 10), 0);
    }

    #[test]
    fn none_is_none() {
        assert!(FaultConfig::none().is_none());
        assert!(FaultConfig::default().is_none());
        assert!(!FaultConfig::uniform(0, 0.01).is_none());
        assert!(FaultConfig::uniform(9, 0.0).is_none());
    }
}
