//! Double buffering and the directory's presence bit (§3.2).
//!
//! Hand-written assembly maps two windows of an array into two LM buffers
//! and starts the second `dma-get` *without* waiting for it, then
//! immediately touches the second window through a guarded load. The
//! directory entry exists but its presence bit is unset, so the access
//! stalls until the transfer completes — the "internal exception" of the
//! paper's double-buffer support — instead of reading garbage.
//!
//! ```text
//! cargo run --release --example double_buffering
//! ```

use hsim::isa::asm::assemble;
use hsim::machine::{Machine, MachineConfig, SysMode};
use hsim_isa::memmap::{DATA_BASE, LM_BASE};

fn main() {
    let data = DATA_BASE + 0x8000; // 32 KiB-aligned chunk source
    let src = format!(
        "
        ; configure 1 KiB buffers
        li   r1, 1024
        dir.cfg r1
        ; dma-get window 0 -> buffer 0 and synch it
        li   r2, {lm0}
        li   r3, {w0}
        li   r4, 1024
        dma.get r2, r3, r4, 0
        dma.synch 0
        ; dma-get window 1 -> buffer 1, tag 1, NO synch (double buffering)
        li   r2, {lm1}
        li   r3, {w1}
        dma.get r2, r3, r4, 1
        ; guarded load into window 1: presence bit unset -> stall
        li   r5, {w1}
        gld.d r6, 0(r5)
        ; guarded load into window 0: present -> fast
        li   r7, {w0}
        gld.d r8, 8(r7)
        halt
        ",
        lm0 = LM_BASE,
        lm1 = LM_BASE + 1024,
        w0 = data,
        w1 = data + 1024,
    );
    let program = assemble(&src).expect("assembles");

    let cfg = MachineConfig::for_mode(SysMode::HybridCoherent);
    let mut m = Machine::new(cfg, program);
    // Seed the data the windows will carry.
    m.world.backing.write_u64(data + 1024, 0xABCD);
    m.world.backing.write_u64(data + 8, 0x1234);
    m.run().expect("halts");

    println!(
        "guarded load of the in-flight window returned {:#x}",
        m.core.int_reg(hsim_isa::Reg(6))
    );
    println!(
        "guarded load of the present window returned   {:#x}",
        m.core.int_reg(hsim_isa::Reg(8))
    );
    println!(
        "presence-bit stalls observed by the core: {}",
        m.core.stats.presence_stalls
    );
    println!(
        "total cycles: {} (the stall covers the second dma-get's completion)",
        m.core.stats.cycles
    );
    assert_eq!(m.core.int_reg(hsim_isa::Reg(6)), 0xABCD);
    assert_eq!(m.core.int_reg(hsim_isa::Reg(8)), 0x1234);
    assert!(m.core.stats.presence_stalls >= 1);
}
