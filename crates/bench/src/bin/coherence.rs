//! Coherence comparison: `Replicate` vs the directory protocol family
//! (`Msi`/`Mesi`/`Moesi`/`Mesif`) on the same sharded kernels, per
//! kernel × core count.
//!
//! `Replicate` keeps per-core private replicas of every cacheable line
//! (the historical backside); the directory modes serve the sharder's
//! replicated-whole tables from shared, directory-tracked lines at the
//! L3 banks. The headline is DRAM read traffic: under a directory
//! protocol, a shared table is fetched once per chip instead of once
//! per core — and the family members then differ in how dirty lines are
//! recalled (MSI re-reads memory, MOESI shares the dirty copy, MESIF
//! pins a designated forwarder). Results are printed as two tables
//! (the historic Replicate-vs-Mesi pairing, then the protocol axis)
//! and written to `BENCH_coherence.json`.
//!
//! ```text
//! cargo run --release -p hsim-bench --bin coherence [--test-scale|--smoke]
//! ```
//!
//! `--smoke` runs a minimal grid (test scale, two kernels, 1/2/4
//! cores): the CI guard. The grid always includes CG at 4 cores, whose
//! gathered `x` table is the acceptance case for directory sharing.

use hsim::prelude::*;
use hsim_bench::{kernels, scale_from_args, Table};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = if smoke {
        Scale::Test
    } else {
        scale_from_args()
    };
    let mut kernels = kernels(scale);
    let core_counts: &[usize] = if smoke { &[1, 2, 4] } else { &[1, 2, 4, 8] };
    if smoke {
        // CG (the gathered-table acceptance case) plus one double-store
        // kernel.
        kernels.retain(|k| k.name == "CG" || k.name == "IS");
    }

    let rows = coherence_sweep_parallel(&kernels, core_counts, SysMode::HybridCoherent)
        .expect("coherence sweep failed");

    println!("COHERENCE: Replicate vs Mesi on the shared backside ({scale:?} scale)");
    println!("(hybrid-coherent machine; dramR = total DRAM line reads)");
    println!();
    let t = Table::new(&[6, 5, 10, 10, 9, 9, 9, 8, 8, 8, 8]);
    t.row(
        &[
            "kernel",
            "cores",
            "mk.rep",
            "mk.mesi",
            "dramR.rep",
            "dramR.mesi",
            "shrhits",
            "invals",
            "intervs",
            "replfall",
            "clufall",
        ]
        .map(String::from),
    );
    t.sep();
    for r in &rows {
        t.row(&[
            r.kernel.clone(),
            format!("{}", r.cores),
            format!("{}", r.makespan_replicate),
            format!("{}", r.makespan_mesi),
            format!("{}", r.dram_reads_replicate),
            format!("{}", r.dram_reads_mesi),
            format!("{}", r.shared_hits),
            format!("{}", r.invalidations),
            format!("{}", r.interventions),
            format!("{}", r.replication_fallbacks),
            format!("{}", r.cluster_fallbacks),
        ]);
    }
    println!();
    let fallbacks: u64 = rows.iter().map(|r| r.replication_fallbacks).sum();
    if fallbacks > 0 {
        println!(
            "note: {fallbacks} shared-marked array(s) fell back to per-core \
             replication (diverged shard layouts) and were not served from \
             shared lines under Mesi."
        );
        println!();
    }
    let cluster_fallbacks: u64 = rows.iter().map(|r| r.cluster_fallbacks).sum();
    if cluster_fallbacks > 0 {
        println!(
            "note: clufall counts shared-marked array(s) that a 2-cluster \
             split of the same kernel would replicate per cluster (directory \
             slices do not span clusters in v1) — cross-cluster sharing is \
             counted, never silently free."
        );
        println!();
    }

    // The acceptance shape: sharded CG at 4 cores must read less DRAM
    // under Mesi than under Replicate (the gathered x table is fetched
    // once per chip, not once per core).
    if let Some(cg4) = rows.iter().find(|r| r.kernel == "CG" && r.cores == 4) {
        println!(
            "CG x4 DRAM reads: {} (Replicate) vs {} (Mesi), {} shared hits",
            cg4.dram_reads_replicate, cg4.dram_reads_mesi, cg4.shared_hits
        );
        assert!(
            cg4.dram_reads_mesi < cg4.dram_reads_replicate,
            "CG x4 must read less DRAM under Mesi ({} vs {})",
            cg4.dram_reads_mesi,
            cg4.dram_reads_replicate
        );
        assert!(cg4.shared_hits > 0, "CG x4 must score shared hits");
    }
    // Single-core points must be mode-invariant (nothing is shared).
    for r in rows.iter().filter(|r| r.cores == 1) {
        assert_eq!(
            r.makespan_replicate, r.makespan_mesi,
            "{}: a lone core has nothing to share",
            r.kernel
        );
    }

    // The protocol axis: the same grid, every family member side by
    // side. Smoke keeps the grid small enough for CI.
    let proto_rows = protocol_sweep_parallel(&kernels, core_counts, SysMode::HybridCoherent)
        .expect("protocol sweep failed");

    println!();
    println!("PROTOCOL FAMILY: protocol x kernel x cores ({scale:?} scale)");
    println!();
    let pt = Table::new(&[6, 5, 9, 10, 9, 9, 8, 8]);
    pt.row(
        &[
            "kernel", "cores", "proto", "makespan", "dramR", "shrhits", "invals", "intervs",
        ]
        .map(String::from),
    );
    pt.sep();
    for r in &proto_rows {
        pt.row(&[
            r.kernel.clone(),
            format!("{}", r.cores),
            r.protocol.clone(),
            format!("{}", r.makespan),
            format!("{}", r.dram_reads),
            format!("{}", r.shared_hits),
            format!("{}", r.invalidations),
            format!("{}", r.interventions),
        ]);
    }
    println!();

    // Family-ordering sanity on every multi-core point: MSI re-reads
    // memory on dirty recalls that MESI serves silently, and MOESI's
    // dirty sharing can only drop further reads — never add them.
    for r in &proto_rows {
        let by = |name: &str| {
            proto_rows
                .iter()
                .find(|p| p.kernel == r.kernel && p.cores == r.cores && p.protocol == name)
                .expect("every point runs every protocol")
        };
        if r.protocol == "mesi" && r.cores > 1 {
            assert!(
                by("msi").dram_reads >= r.dram_reads,
                "{} x{}: MSI must not read less DRAM than MESI",
                r.kernel,
                r.cores
            );
            assert!(
                r.dram_reads >= by("moesi").dram_reads,
                "{} x{}: MOESI must not read more DRAM than MESI",
                r.kernel,
                r.cores
            );
            assert!(
                by("mesif").shared_hits >= r.shared_hits,
                "{} x{}: MESIF must not score fewer shared hits than MESI",
                r.kernel,
                r.cores
            );
        }
    }

    let json = render_json(scale, &rows, &proto_rows);
    std::fs::write("BENCH_coherence.json", &json).expect("write BENCH_coherence.json");
    println!(
        "wrote BENCH_coherence.json ({} rows, {} protocol rows)",
        rows.len(),
        proto_rows.len()
    );
}

/// Hand-rendered JSON (no serde in the offline tree).
fn render_json(
    scale: Scale,
    rows: &[hsim::CoherenceSweepRow],
    proto_rows: &[hsim::ProtocolSweepRow],
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"scale\": \"{scale:?}\",\n"));
    out.push_str("  \"mode\": \"HybridCoherent\",\n");
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"cores\": {}, \
             \"makespan_replicate\": {}, \"makespan_mesi\": {}, \
             \"dram_reads_replicate\": {}, \"dram_reads_mesi\": {}, \
             \"shared_hits\": {}, \"invalidations\": {}, \
             \"interventions\": {}, \"committed\": {}, \
             \"replication_fallbacks\": {}, \"cluster_fallbacks\": {}}}{}\n",
            r.kernel,
            r.cores,
            r.makespan_replicate,
            r.makespan_mesi,
            r.dram_reads_replicate,
            r.dram_reads_mesi,
            r.shared_hits,
            r.invalidations,
            r.interventions,
            r.committed,
            r.replication_fallbacks,
            r.cluster_fallbacks,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"protocol_rows\": [\n");
    for (i, r) in proto_rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"cores\": {}, \"protocol\": \"{}\", \
             \"makespan\": {}, \"dram_reads\": {}, \"shared_hits\": {}, \
             \"invalidations\": {}, \"interventions\": {}, \"committed\": {}}}{}\n",
            r.kernel,
            r.cores,
            r.protocol,
            r.makespan,
            r.dram_reads,
            r.shared_hits,
            r.invalidations,
            r.interventions,
            r.committed,
            if i + 1 == proto_rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}
