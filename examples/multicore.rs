//! The protocol is strictly per-core (§3): LMs hold private data only,
//! and the hardware is replicated per core with no interaction with the
//! inter-core cache coherence protocol. This example runs N independent
//! cores, each with its own LM, directory and caches, on disjoint slices
//! of a shared problem — the paper's multicore integration story.
//!
//! ```text
//! cargo run --release --example multicore
//! ```

use hsim::prelude::*;
use hsim_workloads::nas;

fn main() {
    let cores = 4;
    println!("running {cores} per-core machines (replicated hardware, disjoint data):");
    let mut total_cycles = 0u64;
    let mut total_violations = 0usize;
    for core_id in 0..cores {
        // Each core gets its own kernel instance = its private slice.
        let k = nas::cg(Scale::Test);
        let (r, mismatches) = run_kernel_verified(&k, SysMode::HybridCoherent, true).unwrap();
        assert_eq!(mismatches, 0);
        total_cycles = total_cycles.max(r.cycles);
        total_violations += r.violations;
        println!(
            "  core {core_id}: {:>8} cycles, {:>6} directory accesses, {} violations",
            r.cycles, r.dir_accesses, r.violations
        );
    }
    println!(
        "parallel makespan (max over cores): {} cycles; coherence violations: {}",
        total_cycles, total_violations
    );
    println!("no inter-core coherence traffic is needed: each directory only observes its own core.");
}
