//! Host-speed benchmark of the event-horizon cycle skipper.
//!
//! For every NAS kernel and core count, runs the hybrid-coherent
//! machine twice — cycle skipping (the default) and the `lockstep:
//! true` escape hatch — and reports simulated cycles per host second,
//! the skipped-cycle fraction, and the wall-clock speedup. Results are
//! printed as a table and written to `BENCH_simspeed.json`, the
//! perf-trajectory artifact for this repo.
//!
//! `--profile` additionally attributes the skip-mode host time to the
//! scheduler's phases — per-cycle `tick`s, bulk `advance_to` skips, and
//! horizon recomputation scans — via `RunSpec::profiled()`, printing
//! the breakdown per row and embedding a `"profile"` object in each
//! JSON row.
//!
//! ```text
//! cargo run --release -p hsim-bench --bin simspeed [--test-scale] [--profile]
//! ```

use hsim::core::HostProfile;
use hsim::prelude::*;
use hsim_bench::{jstr, kernels, scale_from_args, SweepJson, Table};
use std::time::Instant;

struct Row {
    kernel: String,
    cores: usize,
    /// Total simulated cycles over all cores (the naive loop's work).
    sim_cycles: u64,
    skipped_cycles: u64,
    host_secs_skip: f64,
    host_secs_lockstep: f64,
    /// Phase attribution of the skip-mode host time (`--profile` only).
    profile: Option<HostProfile>,
}

impl Row {
    fn skipped_fraction(&self) -> f64 {
        self.skipped_cycles as f64 / self.sim_cycles.max(1) as f64
    }

    fn rate(&self, secs: f64) -> f64 {
        self.sim_cycles as f64 / secs.max(1e-9)
    }

    fn speedup(&self) -> f64 {
        self.host_secs_lockstep / self.host_secs_skip.max(1e-9)
    }
}

/// Repetitions per configuration; the minimum wall-clock is reported
/// (the runs are deterministic, so the minimum is the cleanest
/// estimate of the host cost). Low-skip kernels run skip and lockstep
/// at near-identical host cost, so the ratio needs a tight floor on
/// both sides — hence the generous repetition count.
const REPS: usize = 9;

/// One timed run of `kernel` on `cores` simulated cores; returns
/// (total sim cycles, total skipped cycles, host seconds), or `None`
/// when the kernel cannot be sharded to that core count (indirect
/// indexing).
fn run_once(
    kernel: &hsim_compiler::Kernel,
    cores: usize,
    lockstep: bool,
) -> Option<(u64, u64, f64)> {
    let mut cfg = MachineConfig::for_mode(SysMode::HybridCoherent);
    if lockstep {
        cfg = cfg.with_lockstep();
    }
    let start = Instant::now();
    let (cycles, skipped) = if cores == 1 {
        let r = RunSpec::new(kernel)
            .config(cfg)
            .run()
            .expect("simulation failed")
            .into_single();
        (r.cycles, r.skipped_cycles)
    } else {
        match RunSpec::new(kernel).cores(cores).config(cfg).run() {
            Ok(out) => {
                let r = out.into_multi();
                (
                    r.per_core.iter().map(|c| c.cycles).sum(),
                    r.total_skipped_cycles(),
                )
            }
            Err(MultiRunError::Shard(_)) => return None,
            Err(e) => panic!("simulation failed: {e}"),
        }
    };
    Some((cycles, skipped, start.elapsed().as_secs_f64()))
}

/// Runs skip and lockstep `REPS` times each, **interleaved** so a host
/// noise burst hits both modes alike instead of biasing whichever block
/// it lands in, and returns (sim cycles, skipped cycles, best skip
/// seconds, best lockstep seconds); `None` when the kernel does not
/// shard.
fn run_pair(kernel: &hsim_compiler::Kernel, cores: usize) -> Option<(u64, u64, f64, f64)> {
    let mut best_skip = f64::INFINITY;
    let mut best_lock = f64::INFINITY;
    let mut cycles_skipped = None;
    for _ in 0..REPS {
        let (cycles, skipped, skip_secs) = run_once(kernel, cores, false)?;
        let (lock_cycles, _, lock_secs) =
            run_once(kernel, cores, true).expect("shardability cannot depend on lockstep");
        assert_eq!(
            cycles, lock_cycles,
            "{}: skipping changed the simulated timing",
            kernel.name
        );
        best_skip = best_skip.min(skip_secs);
        best_lock = best_lock.min(lock_secs);
        cycles_skipped = Some((cycles, skipped));
    }
    let (cycles, skipped) = cycles_skipped.expect("REPS >= 1");
    Some((cycles, skipped, best_skip, best_lock))
}

/// One profiled run (skip mode) attributing host time to scheduler
/// phases; the simulated results are identical to the timed runs, so
/// only the profile is kept.
fn run_profile(kernel: &hsim_compiler::Kernel, cores: usize) -> HostProfile {
    let cfg = MachineConfig::for_mode(SysMode::HybridCoherent);
    let mut spec = RunSpec::new(kernel).config(cfg).profiled();
    if cores > 1 {
        spec = spec.cores(cores);
    }
    spec.run()
        .expect("shardability checked above")
        .profile
        .expect("profiled run")
}

fn main() {
    let scale = scale_from_args();
    let profiling = std::env::args().any(|a| a == "--profile");
    let core_counts = [1usize, 2, 4];
    let mut rows = Vec::new();
    for kernel in kernels(scale) {
        for &cores in &core_counts {
            let Some((sim_cycles, skipped_cycles, host_secs_skip, host_secs_lockstep)) =
                run_pair(&kernel, cores)
            else {
                println!(
                    "note: {} does not shard to {} cores; skipped",
                    kernel.name, cores
                );
                continue;
            };
            let profile = profiling.then(|| run_profile(&kernel, cores));
            rows.push(Row {
                kernel: kernel.name.clone(),
                cores,
                sim_cycles,
                skipped_cycles,
                host_secs_skip,
                host_secs_lockstep,
                profile,
            });
        }
    }

    println!("SIMSPEED: event-horizon cycle skipping vs lockstep ({scale:?} scale)");
    println!("(rates are simulated cycles per host second, hybrid-coherent machine)");
    println!();
    let t = Table::new(&[6, 5, 12, 8, 12, 12, 8]);
    t.row(
        &[
            "kernel",
            "cores",
            "cycles",
            "skip%",
            "rate(skip)",
            "rate(lock)",
            "speedup",
        ]
        .map(String::from),
    );
    t.sep();
    for r in &rows {
        t.row(&[
            r.kernel.clone(),
            format!("{}", r.cores),
            format!("{}", r.sim_cycles),
            format!("{:.1}", 100.0 * r.skipped_fraction()),
            format!("{:.3e}", r.rate(r.host_secs_skip)),
            format!("{:.3e}", r.rate(r.host_secs_lockstep)),
            format!("{:.2}x", r.speedup()),
        ]);
    }
    if profiling {
        println!();
        println!("PROFILE: host seconds by scheduler phase (one profiled run per row)");
        let pt = Table::new(&[6, 5, 10, 10, 10, 12, 12, 14]);
        pt.row(
            &[
                "kernel",
                "cores",
                "tick_s",
                "advance_s",
                "horizon_s",
                "ticks",
                "advances",
                "horizon_scans",
            ]
            .map(String::from),
        );
        pt.sep();
        for r in &rows {
            let Some(p) = &r.profile else { continue };
            pt.row(&[
                r.kernel.clone(),
                format!("{}", r.cores),
                format!("{:.4}", p.tick_secs),
                format!("{:.4}", p.advance_secs),
                format!("{:.4}", p.horizon_secs),
                format!("{}", p.ticks),
                format!("{}", p.advances),
                format!("{}", p.horizon_scans),
            ]);
        }
    }

    let best = rows
        .iter()
        .max_by(|a, b| a.speedup().total_cmp(&b.speedup()))
        .expect("at least one row");
    println!();
    println!(
        "best speedup: {:.2}x on {} x{} ({:.1}% of cycles skipped)",
        best.speedup(),
        best.kernel,
        best.cores,
        100.0 * best.skipped_fraction()
    );

    let mut json = SweepJson::new(scale).meta("mode", jstr("HybridCoherent"));
    json.begin_rows("rows");
    for r in &rows {
        let mut fields = vec![
            ("kernel", jstr(&r.kernel)),
            ("cores", format!("{}", r.cores)),
            ("sim_cycles", format!("{}", r.sim_cycles)),
            ("skipped_cycles", format!("{}", r.skipped_cycles)),
            ("skipped_fraction", format!("{:.4}", r.skipped_fraction())),
            ("host_seconds_skip", format!("{:.4}", r.host_secs_skip)),
            (
                "host_seconds_lockstep",
                format!("{:.4}", r.host_secs_lockstep),
            ),
            (
                "sim_cycles_per_host_second_skip",
                format!("{:.1}", r.rate(r.host_secs_skip)),
            ),
            (
                "sim_cycles_per_host_second_lockstep",
                format!("{:.1}", r.rate(r.host_secs_lockstep)),
            ),
            ("wallclock_speedup", format!("{:.3}", r.speedup())),
        ];
        if let Some(p) = &r.profile {
            fields.push((
                "profile",
                format!(
                    "{{\"tick_secs\": {:.4}, \"ticks\": {}, \
                     \"advance_secs\": {:.4}, \"advances\": {}, \
                     \"horizon_secs\": {:.4}, \"horizon_scans\": {}}}",
                    p.tick_secs,
                    p.ticks,
                    p.advance_secs,
                    p.advances,
                    p.horizon_secs,
                    p.horizon_scans
                ),
            ));
        }
        json.row(&fields);
    }
    json.write("BENCH_simspeed.json");
}
