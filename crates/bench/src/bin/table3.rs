//! Regenerates Table 3: activity in the memory subsystem for the hybrid
//! and cache-based systems (guarded references, AMAT, L1 hit ratio, and
//! access counts per component in thousands).
//!
//! ```text
//! cargo run --release -p hsim-bench --bin table3 [--test-scale]
//! ```

use hsim::prelude::*;
use hsim_bench::{k, kernels, paper_table3, scale_from_args, Table};

fn main() {
    let scale = scale_from_args();
    let rows = compare_systems(&kernels(scale), Parallelism::Serial).expect("simulation failed");

    println!("TABLE 3: activity in the memory subsystem (counts in thousands)");
    println!();
    let t = Table::new(&[4, 15, 12, 6, 8, 9, 9, 9, 9, 9]);
    t.row(
        &[
            "Name", "Mode", "Guarded", "AMAT", "L1 hit%", "L1 acc", "L2 acc", "L3 acc", "LM acc",
            "Dir acc",
        ]
        .map(String::from),
    );
    t.sep();
    for r in &rows {
        let g = format!(
            "{}/{} ({:.0}%)",
            r.hybrid.guarded_refs,
            r.hybrid.total_refs,
            100.0 * r.hybrid.guarded_refs as f64 / r.hybrid.total_refs.max(1) as f64
        );
        t.row(&[
            r.name.clone(),
            "Hybrid coherent".into(),
            g,
            format!("{:.2}", r.hybrid.amat),
            format!("{:.2}", r.hybrid.l1d_hit_ratio),
            k(r.hybrid.l1_accesses),
            k(r.hybrid.l2_accesses),
            k(r.hybrid.l3_accesses),
            k(r.hybrid.lm_accesses),
            k(r.hybrid.dir_accesses),
        ]);
        t.row(&[
            r.name.clone(),
            "Cache-based".into(),
            "0".into(),
            format!("{:.2}", r.cache.amat),
            format!("{:.2}", r.cache.l1d_hit_ratio),
            k(r.cache.l1_accesses),
            k(r.cache.l2_accesses),
            k(r.cache.l3_accesses),
            "0".into(),
            "0".into(),
        ]);
        if let Some((pg, ha, hl1, ca, cl1)) = paper_table3(&r.name) {
            t.row(&[
                "".into(),
                "(paper)".into(),
                pg.into(),
                format!("{ha:.2}/{ca:.2}"),
                format!("{hl1:.1}/{cl1:.1}"),
                "".into(),
                "".into(),
                "".into(),
                "".into(),
                "".into(),
            ]);
        }
        t.sep();
    }
    println!(
        "\n'(paper)' rows give the paper's guarded ratio, then hybrid/cache AMAT and L1 hit%."
    );
    println!("Access counts depend on the workload sizes and are not directly comparable;");
    println!("the ratios and orderings are (see EXPERIMENTS.md).");
}
