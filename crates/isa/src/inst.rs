//! Instruction definitions and their pure (register-only) semantics.
//!
//! Memory and DMA semantics live in the machine model (`hsim` root crate);
//! this module defines everything that can be evaluated without touching
//! memory: ALU/FPU operations, branch conditions, and the instruction
//! shapes themselves.

use crate::reg::{FReg, Reg};
use std::fmt;

/// Integer ALU operations (3 INT ALUs in the modeled core).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Signed multiplication (longer latency).
    Mul,
    /// Signed division (long latency, unpipelined).
    Div,
    /// Bit-wise and.
    And,
    /// Bit-wise or.
    Or,
    /// Bit-wise xor.
    Xor,
    /// Logical shift left.
    Sll,
    /// Logical shift right.
    Srl,
    /// Arithmetic shift right.
    Sra,
    /// Set-less-than (signed): `rd = (rs1 < src2) as i64`.
    Slt,
    /// Set-less-than (unsigned).
    Sltu,
}

impl AluOp {
    /// Evaluates the operation on two 64-bit integers.
    ///
    /// Division by zero returns 0 (the simulated machine has no traps).
    #[inline]
    pub fn eval(self, a: i64, b: i64) -> i64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Div => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_div(b)
                }
            }
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Sll => a.wrapping_shl(b as u32 & 63),
            AluOp::Srl => ((a as u64).wrapping_shr(b as u32 & 63)) as i64,
            AluOp::Sra => a.wrapping_shr(b as u32 & 63),
            AluOp::Slt => (a < b) as i64,
            AluOp::Sltu => ((a as u64) < (b as u64)) as i64,
        }
    }

    /// Execution latency in cycles on the modeled core.
    #[inline]
    pub fn latency(self) -> u32 {
        match self {
            AluOp::Mul => 3,
            AluOp::Div => 20,
            _ => 1,
        }
    }

    /// Mnemonic used by the assembler (register-register form).
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::Div => "div",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Sll => "sll",
            AluOp::Srl => "srl",
            AluOp::Sra => "sra",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
        }
    }
}

/// Floating-point operations (3 FP ALUs in the modeled core). All operate
/// on 64-bit IEEE doubles.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FpuOp {
    /// Addition.
    FAdd,
    /// Subtraction.
    FSub,
    /// Multiplication.
    FMul,
    /// Division (long latency).
    FDiv,
    /// Square root (long latency).
    FSqrt,
    /// Minimum.
    FMin,
    /// Maximum.
    FMax,
}

impl FpuOp {
    /// Evaluates the operation. Unary operations (`FSqrt`) ignore `b`.
    #[inline]
    pub fn eval(self, a: f64, b: f64) -> f64 {
        match self {
            FpuOp::FAdd => a + b,
            FpuOp::FSub => a - b,
            FpuOp::FMul => a * b,
            FpuOp::FDiv => a / b,
            FpuOp::FSqrt => a.sqrt(),
            FpuOp::FMin => a.min(b),
            FpuOp::FMax => a.max(b),
        }
    }

    /// Execution latency in cycles on the modeled core.
    #[inline]
    pub fn latency(self) -> u32 {
        match self {
            FpuOp::FAdd | FpuOp::FSub | FpuOp::FMin | FpuOp::FMax => 3,
            FpuOp::FMul => 4,
            FpuOp::FDiv => 12,
            FpuOp::FSqrt => 15,
        }
    }

    /// Mnemonic used by the assembler.
    pub fn mnemonic(self) -> &'static str {
        match self {
            FpuOp::FAdd => "fadd",
            FpuOp::FSub => "fsub",
            FpuOp::FMul => "fmul",
            FpuOp::FDiv => "fdiv",
            FpuOp::FSqrt => "fsqrt",
            FpuOp::FMin => "fmin",
            FpuOp::FMax => "fmax",
        }
    }

    /// True for operations that only read their first operand.
    pub fn is_unary(self) -> bool {
        matches!(self, FpuOp::FSqrt)
    }
}

/// Branch conditions comparing two integer registers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned less-than.
    Ltu,
    /// Unsigned greater-or-equal.
    Geu,
}

impl Cond {
    /// Evaluates the condition.
    #[inline]
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => a < b,
            Cond::Ge => a >= b,
            Cond::Ltu => (a as u64) < (b as u64),
            Cond::Geu => (a as u64) >= (b as u64),
        }
    }

    /// Mnemonic suffix used by the assembler (`b{suffix}`).
    pub fn mnemonic(self) -> &'static str {
        match self {
            Cond::Eq => "beq",
            Cond::Ne => "bne",
            Cond::Lt => "blt",
            Cond::Ge => "bge",
            Cond::Ltu => "bltu",
            Cond::Geu => "bgeu",
        }
    }
}

/// Access width of a memory operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Width {
    /// One byte (zero-extended on load).
    B,
    /// Four bytes (sign-extended on load).
    W,
    /// Eight bytes.
    D,
}

impl Width {
    /// Width in bytes.
    #[inline]
    pub fn bytes(self) -> u64 {
        match self {
            Width::B => 1,
            Width::W => 4,
            Width::D => 8,
        }
    }

    /// Assembler suffix (`.b` / `.w` / `.d`).
    pub fn suffix(self) -> &'static str {
        match self {
            Width::B => ".b",
            Width::W => ".w",
            Width::D => ".d",
        }
    }
}

/// How a memory instruction's effective address is routed (paper §3.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Route {
    /// A conventional load/store: the pre-MMU range check sends it to the
    /// LM (when the address lies in the LM window) or to the caches.
    #[default]
    Plain,
    /// A *guarded* access: the address-generation unit looks the SM base
    /// address up in the coherence directory and diverts the access to the
    /// LM on a hit. This is the paper's hardware contribution.
    Guarded,
    /// The incoherent-oracle baseline of Figure 8: no directory hardware,
    /// but the access is magically served by whichever memory holds the
    /// valid copy. Only meaningful in the `HybridOracle` machine mode.
    Oracle,
}

impl Route {
    /// Assembler prefix for load/store mnemonics.
    pub fn prefix(self) -> &'static str {
        match self {
            Route::Plain => "",
            Route::Guarded => "g",
            Route::Oracle => "o",
        }
    }
}

/// Execution-model phase markers (paper Figure 2): the transformed code
/// runs a *control* phase (DMA programming), a *synchronization* phase
/// (waiting on DMA completion) and a *work* phase per tile. The simulator
/// attributes cycles to the phase named by the most recently committed
/// marker, which regenerates Figure 9's stacked bars.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Phase {
    /// Anything outside the transformed loop.
    #[default]
    Other,
    /// Control phase: programming DMA transfers, pointer bookkeeping.
    Control,
    /// Synchronization phase: `dma-synch` waits.
    Synch,
    /// Work phase: the actual computation on the current tile.
    Work,
}

impl Phase {
    /// Name used by the assembler and reports.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Other => "other",
            Phase::Control => "control",
            Phase::Synch => "synch",
            Phase::Work => "work",
        }
    }

    /// All phases, in report order.
    pub const ALL: [Phase; 4] = [Phase::Work, Phase::Synch, Phase::Control, Phase::Other];
}

/// Second source operand of an ALU instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A register.
    Reg(Reg),
    /// A sign-extended immediate.
    Imm(i64),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(i) => write!(f, "{i}"),
        }
    }
}

/// One instruction of the hsim ISA.
///
/// Branch/jump/call targets are *program indices* (PCs); the
/// [`ProgramBuilder`](crate::program::ProgramBuilder) resolves labels to
/// indices at build time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Inst {
    /// Integer ALU operation: `rd = op(rs1, src2)`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// First source register.
        rs1: Reg,
        /// Second source (register or immediate).
        src2: Operand,
    },
    /// Load immediate: `rd = imm`.
    Li {
        /// Destination register.
        rd: Reg,
        /// Immediate value.
        imm: i64,
    },
    /// Floating-point operation: `fd = op(fs1, fs2)`.
    Fpu {
        /// Operation.
        op: FpuOp,
        /// Destination register.
        fd: FReg,
        /// First source register.
        fs1: FReg,
        /// Second source register (ignored by unary ops).
        fs2: FReg,
    },
    /// Move integer bits into an FP register: `fd = bits(rs)`.
    MovIF {
        /// FP destination.
        fd: FReg,
        /// Integer source.
        rs: Reg,
    },
    /// Move FP bits into an integer register: `rd = bits(fs)`.
    MovFI {
        /// Integer destination.
        rd: Reg,
        /// FP source.
        fs: FReg,
    },
    /// Convert integer to double: `fd = rs as f64`.
    CvtIF {
        /// FP destination.
        fd: FReg,
        /// Integer source.
        rs: Reg,
    },
    /// Convert double to integer (truncating): `rd = fs as i64`.
    CvtFI {
        /// Integer destination.
        rd: Reg,
        /// FP source.
        fs: FReg,
    },
    /// Integer load: `rd = mem[base + index + offset]`.
    Load {
        /// Destination register.
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Optional index register added to the base (x86-style indexed
        /// addressing; the paper's Table 2 microbenchmark relies on it).
        index: Option<Reg>,
        /// Byte offset.
        offset: i64,
        /// Access width.
        width: Width,
        /// Routing (plain / guarded / oracle).
        route: Route,
    },
    /// Integer store: `mem[base + index + offset] = rs`.
    Store {
        /// Value register.
        rs: Reg,
        /// Base address register.
        base: Reg,
        /// Optional index register added to the base.
        index: Option<Reg>,
        /// Byte offset.
        offset: i64,
        /// Access width.
        width: Width,
        /// Routing (plain / guarded / oracle).
        route: Route,
    },
    /// FP load (8 bytes): `fd = mem[base + index + offset]`.
    FLoad {
        /// Destination register.
        fd: FReg,
        /// Base address register.
        base: Reg,
        /// Optional index register added to the base.
        index: Option<Reg>,
        /// Byte offset.
        offset: i64,
        /// Routing (plain / guarded / oracle).
        route: Route,
    },
    /// FP store (8 bytes): `mem[base + index + offset] = fs`.
    FStore {
        /// Value register.
        fs: FReg,
        /// Base address register.
        base: Reg,
        /// Optional index register added to the base.
        index: Option<Reg>,
        /// Byte offset.
        offset: i64,
        /// Routing (plain / guarded / oracle).
        route: Route,
    },
    /// Conditional branch to `target` when `cond(rs1, rs2)` holds.
    Branch {
        /// Condition.
        cond: Cond,
        /// First comparison register.
        rs1: Reg,
        /// Second comparison register.
        rs2: Reg,
        /// Target PC (label-resolved).
        target: usize,
    },
    /// Unconditional jump.
    Jump {
        /// Target PC (label-resolved).
        target: usize,
    },
    /// Call: pushes the return PC on the (architectural) RAS and jumps.
    Call {
        /// Target PC (label-resolved).
        target: usize,
    },
    /// Return: pops the return PC.
    Ret,
    /// Programs a DMA transfer from system memory into the local memory
    /// (`dma-get`, §2.1). Registers carry the LM destination address, the
    /// SM source address and the byte count; `tag` groups transfers for
    /// `dma-synch`. Updates the coherence directory (§3.2).
    DmaGet {
        /// Register holding the LM destination address.
        lm: Reg,
        /// Register holding the SM source address.
        sm: Reg,
        /// Register holding the transfer size in bytes.
        bytes: Reg,
        /// Synchronization tag (0–7).
        tag: u8,
    },
    /// Programs a DMA transfer from the local memory back to system memory
    /// (`dma-put`): copies to main memory and invalidates matching cache
    /// lines.
    DmaPut {
        /// Register holding the LM source address.
        lm: Reg,
        /// Register holding the SM destination address.
        sm: Reg,
        /// Register holding the transfer size in bytes.
        bytes: Reg,
        /// Synchronization tag (0–7).
        tag: u8,
    },
    /// Blocks until every DMA transfer with the given tag has completed.
    DmaSynch {
        /// Synchronization tag (0–7).
        tag: u8,
    },
    /// Configures the directory's buffer size (Base/Offset mask registers,
    /// §3.2). The register holds the new LM buffer size in bytes, which
    /// must be a power of two.
    DirCfg {
        /// Register holding the buffer size.
        rs: Reg,
    },
    /// Execution-phase marker (control / synch / work / other).
    PhaseMark {
        /// The phase that starts here.
        phase: Phase,
    },
    /// Stops the machine.
    Halt,
    /// No operation.
    Nop,
}

impl Inst {
    /// True for loads of any kind (integer or FP).
    #[inline]
    pub fn is_load(&self) -> bool {
        matches!(self, Inst::Load { .. } | Inst::FLoad { .. })
    }

    /// True for stores of any kind (integer or FP).
    #[inline]
    pub fn is_store(&self) -> bool {
        matches!(self, Inst::Store { .. } | Inst::FStore { .. })
    }

    /// True for memory operations.
    #[inline]
    pub fn is_mem(&self) -> bool {
        self.is_load() || self.is_store()
    }

    /// The routing of a memory operation, or `None` for non-memory ops.
    #[inline]
    pub fn route(&self) -> Option<Route> {
        match self {
            Inst::Load { route, .. }
            | Inst::Store { route, .. }
            | Inst::FLoad { route, .. }
            | Inst::FStore { route, .. } => Some(*route),
            _ => None,
        }
    }

    /// True for control-transfer instructions.
    #[inline]
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Inst::Branch { .. } | Inst::Jump { .. } | Inst::Call { .. } | Inst::Ret
        )
    }

    /// True for conditional branches.
    #[inline]
    pub fn is_cond_branch(&self) -> bool {
        matches!(self, Inst::Branch { .. })
    }

    /// True for DMA operations (handled by the DMA controller).
    #[inline]
    pub fn is_dma(&self) -> bool {
        matches!(
            self,
            Inst::DmaGet { .. } | Inst::DmaPut { .. } | Inst::DmaSynch { .. }
        )
    }

    /// The access width of a memory operation (FP ops are 8 bytes wide).
    #[inline]
    pub fn mem_width(&self) -> Option<Width> {
        match self {
            Inst::Load { width, .. } | Inst::Store { width, .. } => Some(*width),
            Inst::FLoad { .. } | Inst::FStore { .. } => Some(Width::D),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_eval_basics() {
        assert_eq!(AluOp::Add.eval(2, 3), 5);
        assert_eq!(AluOp::Sub.eval(2, 3), -1);
        assert_eq!(AluOp::Mul.eval(-4, 3), -12);
        assert_eq!(AluOp::Div.eval(7, 2), 3);
        assert_eq!(AluOp::Div.eval(7, 0), 0, "div by zero is defined as 0");
        assert_eq!(AluOp::And.eval(0b1100, 0b1010), 0b1000);
        assert_eq!(AluOp::Or.eval(0b1100, 0b1010), 0b1110);
        assert_eq!(AluOp::Xor.eval(0b1100, 0b1010), 0b0110);
        assert_eq!(AluOp::Sll.eval(1, 4), 16);
        assert_eq!(AluOp::Srl.eval(-1, 60), 15);
        assert_eq!(AluOp::Sra.eval(-16, 2), -4);
        assert_eq!(AluOp::Slt.eval(-1, 0), 1);
        assert_eq!(AluOp::Sltu.eval(-1, 0), 0, "-1 is u64::MAX unsigned");
    }

    #[test]
    fn alu_eval_wrapping() {
        assert_eq!(AluOp::Add.eval(i64::MAX, 1), i64::MIN);
        assert_eq!(AluOp::Mul.eval(i64::MAX, 2), -2);
        // Shift amounts are masked to 6 bits.
        assert_eq!(AluOp::Sll.eval(1, 64), 1);
        assert_eq!(AluOp::Sll.eval(1, 65), 2);
    }

    #[test]
    fn fpu_eval_basics() {
        assert_eq!(FpuOp::FAdd.eval(1.5, 2.25), 3.75);
        assert_eq!(FpuOp::FSub.eval(1.5, 2.25), -0.75);
        assert_eq!(FpuOp::FMul.eval(3.0, -2.0), -6.0);
        assert_eq!(FpuOp::FDiv.eval(1.0, 4.0), 0.25);
        assert_eq!(FpuOp::FSqrt.eval(9.0, 0.0), 3.0);
        assert_eq!(FpuOp::FMin.eval(1.0, 2.0), 1.0);
        assert_eq!(FpuOp::FMax.eval(1.0, 2.0), 2.0);
    }

    #[test]
    fn cond_eval() {
        assert!(Cond::Eq.eval(3, 3));
        assert!(Cond::Ne.eval(3, 4));
        assert!(Cond::Lt.eval(-1, 0));
        assert!(Cond::Ge.eval(0, 0));
        assert!(!Cond::Ltu.eval(-1, 0));
        assert!(Cond::Geu.eval(-1, 0));
    }

    #[test]
    fn widths() {
        assert_eq!(Width::B.bytes(), 1);
        assert_eq!(Width::W.bytes(), 4);
        assert_eq!(Width::D.bytes(), 8);
    }

    #[test]
    fn inst_classification() {
        let ld = Inst::Load {
            rd: Reg(1),
            base: Reg(2),
            index: None,
            offset: 0,
            width: Width::D,
            route: Route::Guarded,
        };
        assert!(ld.is_load() && ld.is_mem() && !ld.is_store());
        assert_eq!(ld.route(), Some(Route::Guarded));
        assert_eq!(ld.mem_width(), Some(Width::D));

        let st = Inst::FStore {
            fs: FReg(0),
            base: Reg(2),
            index: Some(Reg(3)),
            offset: 8,
            route: Route::Plain,
        };
        assert!(st.is_store() && st.is_mem());
        assert_eq!(st.mem_width(), Some(Width::D));

        let br = Inst::Branch {
            cond: Cond::Ne,
            rs1: Reg(1),
            rs2: Reg(2),
            target: 0,
        };
        assert!(br.is_control() && br.is_cond_branch());
        assert!(!br.is_mem());
        assert_eq!(br.route(), None);

        assert!(Inst::DmaSynch { tag: 0 }.is_dma());
        assert!(!Inst::Halt.is_dma());
    }

    #[test]
    fn latencies_are_positive() {
        for op in [AluOp::Add, AluOp::Mul, AluOp::Div, AluOp::Sll, AluOp::Slt] {
            assert!(op.latency() >= 1);
        }
        for op in [FpuOp::FAdd, FpuOp::FMul, FpuOp::FDiv, FpuOp::FSqrt] {
            assert!(op.latency() >= 1);
        }
    }
}
