//! # hsim-mem — memory subsystem of the hybrid-memory simulator
//!
//! Implements every storage component of the paper's architecture
//! (Figure 1 / Table 1):
//!
//! * [`backing`] — everything behind the last-level cache: the functional
//!   64-bit address space (sparse paged memory — caches are *timing*
//!   models; data always lives here, which is what makes the end-to-end
//!   coherence checks possible) and the [`DramController`] timing model
//!   (per-bank row buffers, open-row policy, bounded posted-write queue
//!   with FR-FCFS-style hit-first draining, flat-latency escape hatch).
//! * [`cache`] — set-associative cache arrays with LRU replacement,
//!   write-through and write-back policies, and the Table 3 access
//!   accounting (demand, prefetch, fill, write-back, snoop, invalidate).
//! * [`mshr`] — miss-status holding registers: in-flight miss merging and
//!   occupancy limits.
//! * [`prefetch`] — the IP-based stream prefetcher of Table 1, with a
//!   finite per-PC history table (the source of the paper's
//!   "collisions in the history tables" effect for many-stream loops).
//! * [`tlb`] — a TLB model for system-memory accesses; local-memory
//!   accesses bypass it entirely (paper §2.1).
//! * [`lm`] — the local memory (scratchpad) timing model.
//! * [`dma`] — the DMA controller: `dma-get` / `dma-put` / `dma-synch`,
//!   coherent with the cache hierarchy (snoops on get, invalidates on put).
//! * [`fault`] — deterministic fault injection: a seeded, counter-based
//!   plan ([`FaultConfig`]) driving transient DRAM read errors, DMA
//!   timeouts and directory NACKs, all recovered by bounded
//!   retry/backoff — faults perturb timing only, never architectural
//!   state.
//! * [`hierarchy`] — the L1/L2/L3 + DRAM walk that ties the above
//!   together and produces per-level access counts and latencies; the
//!   shared backside ([`SharedBackside`]) lives here as a vector of
//!   address-interleaved L3 banks with per-bank arbitrated ports in
//!   front of the DRAM controller, with per-core statistics that
//!   partition the chip totals exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backing;
pub mod cache;
pub mod dma;
pub mod fault;
pub mod hierarchy;
pub mod lm;
pub mod mshr;
pub mod prefetch;
pub mod tlb;

pub use backing::{DramConfig, DramController, DramStats, DramTiming, PagedMem, RowOutcome};
pub use cache::{AccessKind, Cache, CacheConfig, CacheStats, WritePolicy};
pub use dma::{DmaConfig, DmaOp, DmaStats, Dmac};
pub use fault::{FaultConfig, FaultEscalation, FaultRoller, FaultSite};
pub use hierarchy::{
    AccessResponse, BacksideCoreStats, CacheEvent, CoherenceConfig, CoherenceMode, CoherenceStats,
    L3Geometry, Level, MemConfig, MemSystem, SharedBackside,
};
pub use lm::{LmConfig, LocalMem};
pub use mshr::MshrFile;
pub use prefetch::{PrefetchConfig, StreamPrefetcher};
pub use tlb::{Tlb, TlbConfig};
