//! Local-memory (scratchpad) timing model.
//!
//! The LM is a software-managed SRAM integrated at the same level as the
//! L1 data cache (Figure 1). It is direct-mapped into a reserved virtual
//! address range, so an access is just an array read: no tag comparison,
//! no TLB lookup, fixed latency (Table 1: 32 KB, 2-cycle). Data contents
//! live in the functional backing store; this type models timing and
//! activity.

/// Local-memory configuration.
#[derive(Clone, Debug)]
pub struct LmConfig {
    /// Capacity in bytes (Table 1: 32 KiB).
    pub size_bytes: u64,
    /// Access latency in cycles (Table 1: 2).
    pub latency: u64,
}

impl Default for LmConfig {
    fn default() -> Self {
        LmConfig {
            size_bytes: 32 * 1024,
            latency: 2,
        }
    }
}

/// Local-memory activity counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct LmStats {
    /// CPU loads served by the LM.
    pub reads: u64,
    /// CPU stores served by the LM.
    pub writes: u64,
    /// Bytes written into the LM by `dma-get` transfers.
    pub dma_bytes_in: u64,
    /// Bytes read out of the LM by `dma-put` transfers.
    pub dma_bytes_out: u64,
}

impl LmStats {
    /// Total CPU accesses (Table 3 "LM Accesses" column counts these plus
    /// the DMA line transfers, which the hierarchy adds separately).
    pub fn cpu_accesses(&self) -> u64 {
        self.reads + self.writes
    }
}

/// The local memory timing model.
pub struct LocalMem {
    /// Configuration.
    pub cfg: LmConfig,
    /// Activity counters.
    pub stats: LmStats,
}

impl LocalMem {
    /// Builds the LM.
    pub fn new(cfg: LmConfig) -> Self {
        LocalMem {
            cfg,
            stats: LmStats::default(),
        }
    }

    /// A CPU access; returns the fixed latency.
    #[inline]
    pub fn access(&mut self, is_write: bool) -> u64 {
        if is_write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        self.cfg.latency
    }

    /// Notes DMA traffic into the LM.
    pub fn note_dma_in(&mut self, bytes: u64) {
        self.stats.dma_bytes_in += bytes;
    }

    /// Notes DMA traffic out of the LM.
    pub fn note_dma_out(&mut self, bytes: u64) {
        self.stats.dma_bytes_out += bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_latency_and_counting() {
        let mut lm = LocalMem::new(LmConfig::default());
        assert_eq!(lm.access(false), 2);
        assert_eq!(lm.access(true), 2);
        assert_eq!(lm.access(true), 2);
        assert_eq!(lm.stats.reads, 1);
        assert_eq!(lm.stats.writes, 2);
        assert_eq!(lm.stats.cpu_accesses(), 3);
    }

    #[test]
    fn dma_byte_accounting() {
        let mut lm = LocalMem::new(LmConfig::default());
        lm.note_dma_in(1024);
        lm.note_dma_out(512);
        lm.note_dma_in(1024);
        assert_eq!(lm.stats.dma_bytes_in, 2048);
        assert_eq!(lm.stats.dma_bytes_out, 512);
    }
}
