//! TLB model for system-memory accesses.
//!
//! The paper's key point about address translation (§2.1): local-memory
//! accesses perform a *range check prior to any MMU action* and bypass the
//! TLB entirely, making them power-efficient and deterministic. SM
//! accesses, in contrast, consult this TLB; misses add a fixed page-walk
//! penalty. The machine only calls [`Tlb::access`] for SM addresses.

/// TLB configuration.
#[derive(Clone, Debug)]
pub struct TlbConfig {
    /// Number of entries.
    pub entries: usize,
    /// Associativity.
    pub ways: usize,
    /// Page size in bytes (power of two).
    pub page_bytes: u64,
    /// Page-walk penalty in cycles on a miss.
    pub miss_penalty: u64,
}

impl Default for TlbConfig {
    fn default() -> Self {
        TlbConfig {
            entries: 64,
            ways: 4,
            page_bytes: 4096,
            miss_penalty: 30,
        }
    }
}

#[derive(Clone, Copy, Default)]
struct TlbEntry {
    vpn: u64,
    valid: bool,
    lru: u64,
}

/// TLB statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct TlbStats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed (walked).
    pub misses: u64,
}

/// A set-associative TLB.
pub struct Tlb {
    cfg: TlbConfig,
    sets: Vec<TlbEntry>,
    set_mask: u64,
    page_shift: u32,
    clock: u64,
    /// Statistics.
    pub stats: TlbStats,
}

impl Tlb {
    /// Builds an empty TLB.
    pub fn new(cfg: TlbConfig) -> Self {
        assert!(cfg.page_bytes.is_power_of_two());
        assert!(cfg.entries.is_multiple_of(cfg.ways));
        let sets = (cfg.entries / cfg.ways).next_power_of_two();
        Tlb {
            set_mask: sets as u64 - 1,
            page_shift: cfg.page_bytes.trailing_zeros(),
            sets: vec![TlbEntry::default(); sets * cfg.ways],
            clock: 0,
            stats: TlbStats::default(),
            cfg,
        }
    }

    /// Looks up `addr`, filling the entry on a miss. Returns the added
    /// latency (0 on hit, `miss_penalty` on miss).
    pub fn access(&mut self, addr: u64) -> u64 {
        self.clock += 1;
        let vpn = addr >> self.page_shift;
        let base = ((vpn & self.set_mask) as usize) * self.cfg.ways;
        for w in 0..self.cfg.ways {
            let e = &mut self.sets[base + w];
            if e.valid && e.vpn == vpn {
                e.lru = self.clock;
                self.stats.hits += 1;
                return 0;
            }
        }
        self.stats.misses += 1;
        // Fill LRU way.
        let victim = (0..self.cfg.ways)
            .map(|w| base + w)
            .min_by_key(|&i| {
                if self.sets[i].valid {
                    self.sets[i].lru
                } else {
                    0
                }
            })
            .unwrap();
        self.sets[victim] = TlbEntry {
            vpn,
            valid: true,
            lru: self.clock,
        };
        self.cfg.miss_penalty
    }

    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.stats.hits + self.stats.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_access_misses_second_hits() {
        let mut t = Tlb::new(TlbConfig::default());
        assert_eq!(t.access(0x1000), 30);
        assert_eq!(t.access(0x1008), 0, "same page");
        assert_eq!(t.access(0x2000), 30, "new page");
        assert_eq!(t.stats.hits, 1);
        assert_eq!(t.stats.misses, 2);
    }

    #[test]
    fn capacity_eviction() {
        let cfg = TlbConfig {
            entries: 4,
            ways: 2,
            page_bytes: 4096,
            miss_penalty: 30,
        };
        let mut t = Tlb::new(cfg);
        // 2 sets x 2 ways. Pages mapping to set 0: vpn 0,2,4...
        assert_eq!(t.access(0 << 12), 30);
        assert_eq!(t.access(2 << 12), 30);
        assert_eq!(t.access(4 << 12), 30); // evicts vpn 0
        assert_eq!(t.access(0 << 12), 30, "evicted page misses again");
        assert_eq!(t.access(4 << 12), 0, "recently used page survives");
    }

    #[test]
    fn streaming_large_array_misses_per_page() {
        let mut t = Tlb::new(TlbConfig::default());
        // Stream 256 pages of 4 KiB with 64B accesses: one miss per page.
        for a in (0..(256 * 4096u64)).step_by(64) {
            t.access(0x100_0000 + a);
        }
        assert_eq!(t.stats.misses, 256);
        assert_eq!(t.lookups(), 256 * 64);
    }
}
